#include "src/blockstop/blockstop.h"

#include <algorithm>
#include <tuple>

#include "src/tool/function_sharder.h"
#include "src/vm/builtins.h"

namespace ivy {

namespace {
constexpr int64_t kGfpWait = 1;

// Total order on violations: strategy-independent output bytes. The key is
// unique per call site (locs differ at least in column), so any collection
// order sorts to the same sequence.
bool ViolationLess(const BlockingViolation& a, const BlockingViolation& b) {
  return std::tie(a.caller, a.callee, a.loc.file, a.loc.line, a.loc.col, a.witness,
                  a.via_indirect) < std::tie(b.caller, b.callee, b.loc.file, b.loc.line,
                                             b.loc.col, b.witness, b.via_indirect);
}
}  // namespace

BlockStop::BlockStop(const Program* prog, const Sema* sema, const CallGraph* cg)
    : prog_(prog), sema_(sema), cg_(cg) {
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    for (const CallSite& site : cg_->SitesOf(fn)) {
      site_index_[site.expr] = &site;
    }
  }
}

const CallSite* BlockStop::SiteFor(const Expr* e) const {
  auto it = site_index_.find(e);
  return it == site_index_.end() ? nullptr : it->second;
}

bool BlockStop::CallMayBlock(const FuncDecl* callee, const ExprList& args,
                             const FuncDecl* caller) const {
  if (callee == nullptr) {
    return false;
  }
  if (callee->attrs.blocking) {
    return true;
  }
  if (callee->is_builtin && BuiltinIsBlocking(static_cast<Builtin>(callee->builtin_id))) {
    return true;
  }
  int flag_param = callee->attrs.blocking_if_param;
  if (flag_param >= 0) {
    if (static_cast<size_t>(flag_param) >= args.size()) {
      return true;  // missing flag argument: be conservative
    }
    const Expr* flag = args[static_cast<size_t>(flag_param)];
    if (flag->is_const) {
      return (flag->int_val & kGfpWait) != 0;
    }
    // Pass-through wrappers: `kmalloc(size, flags)` inside a function itself
    // annotated blocking_if(flags) stays conditional — it is the *wrapper's*
    // call sites that decide.
    if (caller != nullptr && caller->attrs.blocking_if_param >= 0 &&
        flag->kind == ExprKind::kIdent && flag->sym != nullptr &&
        flag->sym->kind == SymKind::kParam &&
        flag->sym->param_index == caller->attrs.blocking_if_param) {
      return false;
    }
    return true;  // unknown flag expression: conservative
  }
  if (!callee->is_builtin && mayblock_.count(callee) != 0) {
    return true;
  }
  return false;
}

std::string BlockStop::WitnessFor(const FuncDecl* fn) const {
  auto it = witness_.find(fn);
  if (it != witness_.end()) {
    return it->second;
  }
  // Extern-declared callee with an imported may-block bit: render the
  // defining module's witness, exactly what a merged-source run would say.
  if (!fn->attrs.block_witness.empty()) {
    return fn->attrs.block_witness;
  }
  return "annotated blocking";
}

const FuncDecl* BlockStop::BlockingCauseOf(const FuncDecl* fn) const {
  for (const CallSite& site : cg_->SitesOf(fn)) {
    if (site.is_irq_dispatch) {
      continue;  // handlers run in irq context; dispatch itself won't sleep
    }
    const ExprList& args = site.expr->args;
    if (site.builtin != nullptr && CallMayBlock(site.builtin, args, fn)) {
      return site.builtin;
    }
    if (site.direct != nullptr && CallMayBlock(site.direct, args, fn)) {
      return site.direct;
    }
    for (const FuncDecl* t : site.indirect) {
      // A noblock candidate carries the paper's assert_nonatomic() run-time
      // check: the assertion that it is never actually reached on an atomic
      // path also cuts may-block propagation through this
      // (points-to-imprecise) edge. Direct calls still propagate normally.
      if (t->attrs.noblock) {
        continue;
      }
      if (CallMayBlock(t, args, fn)) {
        return t;
      }
    }
  }
  return nullptr;
}

void BlockStop::SeedMayBlock(const std::set<std::string>* clean,
                             const std::set<std::string>* prev_mayblock) {
  seed_clean_ = clean;
  seed_prev_mayblock_ = prev_mayblock;
}

void BlockStop::ComputeMayBlock() {
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    if (fn->attrs.blocking) {
      mayblock_.insert(fn);
    } else if (SeededClean(fn) && seed_prev_mayblock_ != nullptr &&
               seed_prev_mayblock_->count(fn->name) != 0) {
      mayblock_.insert(fn);  // memoized: its callee subtree is unchanged
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FuncDecl* fn : cg_->DefinedFuncs()) {
      if (SeededClean(fn)) {
        continue;  // bit frozen by the seed (true and false alike)
      }
      if (mayblock_.count(fn) != 0 || fn->attrs.blocking_if_param >= 0) {
        // Conditionally-blocking wrappers are handled at their call sites.
        continue;
      }
      ++mayblock_evals_;
      if (BlockingCauseOf(fn) != nullptr) {
        mayblock_.insert(fn);
        changed = true;
      }
    }
  }
}

void BlockStop::ComputeMayBlockSharded(const FunctionSharder& sharder, WorkQueue& wq) {
  const std::vector<const FuncDecl*>& funcs = sharder.functions();
  const size_t n = funcs.size();
  std::vector<size_t> candidates;
  candidates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (funcs[i]->attrs.blocking) {
      mayblock_.insert(funcs[i]);
    } else if (SeededClean(funcs[i])) {
      if (seed_prev_mayblock_ != nullptr && seed_prev_mayblock_->count(funcs[i]->name) != 0) {
        mayblock_.insert(funcs[i]);
      }
    } else if (funcs[i]->attrs.blocking_if_param < 0) {
      candidates.push_back(i);
    }
  }
  // Jacobi worklist rounds: scan this round's candidates against the frozen
  // may-block set, publish at the barrier, then rescan only the callers of
  // what changed. Monotone, so the fixpoint equals the serial loop's.
  while (!candidates.empty()) {
    mayblock_evals_ += static_cast<int64_t>(candidates.size());
    std::vector<std::vector<size_t>> per_chunk = sharder.MapChunks<size_t>(
        wq, candidates.size(), [this, &candidates, &funcs](int, size_t begin, size_t end) {
          std::vector<size_t> hit;
          for (size_t i = begin; i < end; ++i) {
            const FuncDecl* fn = funcs[candidates[i]];
            if (mayblock_.count(fn) == 0 && BlockingCauseOf(fn) != nullptr) {
              hit.push_back(candidates[i]);
            }
          }
          return hit;
        });
    std::vector<size_t> newly;
    for (const std::vector<size_t>& chunk : per_chunk) {
      newly.insert(newly.end(), chunk.begin(), chunk.end());
    }
    if (newly.empty()) {
      break;
    }
    for (size_t idx : newly) {
      mayblock_.insert(funcs[idx]);
    }
    std::set<size_t> next;
    for (size_t idx : newly) {
      for (const FuncDecl* caller : cg_->CallersOf(funcs[idx])) {
        size_t c = sharder.IndexOf(caller);
        if (c < n && mayblock_.count(caller) == 0 && caller->attrs.blocking_if_param < 0 &&
            !SeededClean(caller)) {
          next.insert(c);
        }
      }
    }
    candidates.assign(next.begin(), next.end());
  }
}

std::string BlockStop::WitnessOf(const FuncDecl* fn) const {
  if (fn->attrs.blocking) {
    return "annotated blocking";
  }
  const FuncDecl* cause = BlockingCauseOf(fn);
  return cause != nullptr ? "calls " + cause->name : "annotated blocking";
}

void BlockStop::AssignWitnesses() {
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    if (mayblock_.count(fn) != 0) {
      witness_[fn] = WitnessOf(fn);
    }
  }
}

void BlockStop::WalkExpr(const FuncDecl* fn, const Expr* e, IrqState* st, uint8_t entry_irq,
                         std::vector<std::pair<const Expr*, IrqState>>* out) const {
  if (e == nullptr) {
    return;
  }
  WalkExpr(fn, e->a, st, entry_irq, out);
  WalkExpr(fn, e->b, st, entry_irq, out);
  WalkExpr(fn, e->c, st, entry_irq, out);
  for (const Expr* arg : e->args) {
    WalkExpr(fn, arg, st, entry_irq, out);
  }
  if (e->kind != ExprKind::kCall) {
    return;
  }
  out->push_back({e, *st});
  const CallSite* site = SiteFor(e);
  if (site == nullptr || site->builtin == nullptr) {
    return;
  }
  const std::string& name = site->builtin->name;
  if (name == "local_irq_disable" || name == "local_irq_save") {
    st->irq = 2;
  } else if (name == "local_irq_enable") {
    st->irq = 1;
  } else if (name == "local_irq_restore") {
    st->irq = entry_irq;
  } else if (name == "spin_lock_irqsave") {
    st->irq = 2;
    st->spin += 1;
  } else if (name == "spin_unlock_irqrestore") {
    st->irq = entry_irq;
    st->spin = std::max(0, st->spin - 1);
  } else if (name == "spin_lock") {
    st->spin += 1;
  } else if (name == "spin_unlock") {
    st->spin = std::max(0, st->spin - 1);
  }
}

void BlockStop::WalkStmt(const FuncDecl* fn, const Stmt* s, IrqState* st, uint8_t entry_irq,
                         std::vector<std::pair<const Expr*, IrqState>>* out) const {
  if (s == nullptr) {
    return;
  }
  switch (s->kind) {
    case StmtKind::kIf: {
      WalkExpr(fn, s->cond, st, entry_irq, out);
      IrqState then_st = *st;
      WalkStmt(fn, s->then_stmt, &then_st, entry_irq, out);
      IrqState else_st = *st;
      WalkStmt(fn, s->else_stmt, &else_st, entry_irq, out);
      *st = then_st;
      st->Join(else_st);
      return;
    }
    case StmtKind::kWhile:
    case StmtKind::kDoWhile: {
      WalkExpr(fn, s->cond, st, entry_irq, out);
      IrqState body = *st;
      WalkStmt(fn, s->then_stmt, &body, entry_irq, out);
      st->Join(body);
      return;
    }
    case StmtKind::kFor: {
      WalkStmt(fn, s->init, st, entry_irq, out);
      WalkExpr(fn, s->cond, st, entry_irq, out);
      IrqState body = *st;
      WalkStmt(fn, s->then_stmt, &body, entry_irq, out);
      WalkExpr(fn, s->step, &body, entry_irq, out);
      st->Join(body);
      return;
    }
    default: {
      WalkExpr(fn, s->expr, st, entry_irq, out);
      if (s->decl != nullptr) {
        WalkExpr(fn, s->decl->init, st, entry_irq, out);
      }
      WalkStmt(fn, s->init, st, entry_irq, out);
      WalkStmt(fn, s->then_stmt, st, entry_irq, out);
      WalkStmt(fn, s->else_stmt, st, entry_irq, out);
      for (const Stmt* child : s->body) {
        WalkStmt(fn, child, st, entry_irq, out);
      }
      return;
    }
  }
}

BlockStop::EntryEffects BlockStop::EvaluateEntry(const FuncDecl* fn, uint8_t entry_bit) const {
  EntryEffects out;
  IrqState st;
  st.irq = entry_bit == 1 ? 1 : 2;
  st.spin = 0;
  uint8_t entry_irq = st.irq;
  std::vector<std::pair<const Expr*, IrqState>> sites;
  WalkStmt(fn, fn->body, &st, entry_irq, &sites);
  for (auto& [expr, state] : sites) {
    const CallSite* site = SiteFor(expr);
    if (site == nullptr) {
      continue;
    }
    bool atomic = state.Atomic();
    // Context propagation into Mini-C callees.
    uint8_t callee_bits = 0;
    if ((state.irq & 1) != 0 && state.spin == 0) {
      callee_bits |= 1;
    }
    if (atomic) {
      callee_bits |= 2;
    }
    for (const FuncDecl* callee : site->McCallees()) {
      uint8_t add = callee_bits;
      if (callee->attrs.noblock) {
        add &= 1;  // its runtime check asserts non-atomic entry
      }
      if (site->is_irq_dispatch) {
        add |= 2;
      }
      if (add != 0) {
        out.callee_bits.push_back({callee, add});
      }
    }
    if (!atomic || site->is_irq_dispatch) {
      continue;
    }
    // Violation detection at this atomic site.
    const ExprList& args = expr->args;
    std::vector<const FuncDecl*> blockers;
    if (site->builtin != nullptr && CallMayBlock(site->builtin, args, fn)) {
      blockers.push_back(site->builtin);
    }
    if (site->direct != nullptr && CallMayBlock(site->direct, args, fn)) {
      blockers.push_back(site->direct);
    }
    for (const FuncDecl* t : site->indirect) {
      if (CallMayBlock(t, args, fn)) {
        blockers.push_back(t);
      }
    }
    if (blockers.empty()) {
      continue;
    }
    std::vector<const FuncDecl*> surviving;
    for (const FuncDecl* b : blockers) {
      if (!b->attrs.noblock) {
        surviving.push_back(b);
      }
    }
    BlockingViolation v;
    v.loc = expr->loc;
    v.caller = fn->name;
    if (!surviving.empty()) {
      v.callee = surviving[0]->name;
      v.witness = WitnessFor(surviving[0]);
      v.via_indirect = site->direct == nullptr && site->builtin == nullptr;
      out.reported.push_back({expr, v});
    } else {
      v.callee = blockers[0]->name;
      v.witness = WitnessFor(blockers[0]);
      v.via_indirect = true;
      out.silenced.push_back({expr, v});
    }
  }
  return out;
}

BlockStopReport BlockStop::ReportShell() const {
  BlockStopReport report;
  report.num_defined_funcs = static_cast<int>(cg_->DefinedFuncs().size());
  report.callgraph_edges = cg_->edge_count();
  report.indirect_sites = cg_->indirect_site_count();
  report.indirect_target_total = cg_->indirect_target_total();
  report.mayblock_evals = mayblock_evals_;
  for (const FuncDecl* fn : mayblock_) {
    report.mayblock.insert(fn->name);
    report.mayblock_witness[fn->name] = WitnessFor(fn);
  }
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    if (fn->attrs.noblock) {
      ++report.runtime_checks;
    }
  }
  return report;
}

void BlockStop::FinishReport(BlockStopReport* report,
                             std::map<const Expr*, BlockingViolation> reported,
                             std::map<const Expr*, BlockingViolation> silenced) const {
  for (auto& [expr, v] : reported) {
    report->violations.push_back(std::move(v));
  }
  for (auto& [expr, v] : silenced) {
    report->silenced.push_back(std::move(v));
  }
  std::sort(report->violations.begin(), report->violations.end(), ViolationLess);
  std::sort(report->silenced.begin(), report->silenced.end(), ViolationLess);
}

BlockStopReport BlockStop::Run() {
  mayblock_.clear();
  witness_.clear();
  ComputeMayBlock();
  AssignWitnesses();
  BlockStopReport report = ReportShell();

  // Interprocedural context fixpoint: bit 1 = entered with irqs on,
  // bit 2 = entered atomically. The serial reference re-evaluates every
  // (function, entry-bit) pair each round until nothing changes.
  std::map<const FuncDecl*, uint8_t> contexts;
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    contexts[fn] = 1;
    // Imported top-down fact: some other module of a linked corpus may enter
    // this function atomically. The exporter already applied the noblock
    // mask, but stay defensive — a noblock body asserts non-atomic entry.
    if (fn->attrs.entered_atomic && !fn->attrs.noblock) {
      contexts[fn] |= 2;
    }
  }
  for (const FuncDecl* fn : cg_->irq_entries()) {
    if (!fn->attrs.noblock) {
      contexts[fn] |= 2;
    }
  }
  std::map<const Expr*, BlockingViolation> reported;
  std::map<const Expr*, BlockingViolation> silenced;
  bool changed = true;
  while (changed) {
    changed = false;
    ++report.context_rounds;
    for (const FuncDecl* fn : cg_->DefinedFuncs()) {
      uint8_t entries = contexts[fn];
      for (uint8_t entry_bit : {uint8_t{1}, uint8_t{2}}) {
        if ((entries & entry_bit) == 0) {
          continue;
        }
        EntryEffects effects = EvaluateEntry(fn, entry_bit);
        for (auto& [callee, add] : effects.callee_bits) {
          uint8_t& bits = contexts[callee];
          if ((bits | add) != bits) {
            bits |= add;
            changed = true;
          }
        }
        for (auto& [expr, v] : effects.reported) {
          reported.emplace(expr, std::move(v));
        }
        for (auto& [expr, v] : effects.silenced) {
          silenced.emplace(expr, std::move(v));
        }
      }
    }
  }
  // Context bits that landed on extern-declared callees: the top-down link
  // export. (The map iterates by pointer, but the name-keyed copy sorts.)
  for (const auto& [fn, bits] : contexts) {
    if (fn->body == nullptr && !fn->is_builtin && bits != 0) {
      report.extern_entry_bits[fn->name] |= bits;
    }
  }
  FinishReport(&report, std::move(reported), std::move(silenced));
  return report;
}

BlockStopReport BlockStop::Run(const FunctionSharder& sharder, WorkQueue& wq) {
  mayblock_.clear();
  witness_.clear();
  ComputeMayBlockSharded(sharder, wq);

  // Witnesses in parallel: pure per-function work, merged in chunk order
  // (though any order would do — each function owns its slot).
  const std::vector<const FuncDecl*>& funcs = sharder.functions();
  const size_t n = funcs.size();
  using WitnessEntry = std::pair<size_t, std::string>;
  std::vector<std::vector<WitnessEntry>> witness_chunks =
      sharder.MapChunks<WitnessEntry>(
          wq, n, [this, &funcs](int, size_t begin, size_t end) {
            std::vector<WitnessEntry> out;
            for (size_t i = begin; i < end; ++i) {
              if (mayblock_.count(funcs[i]) != 0) {
                out.push_back({i, WitnessOf(funcs[i])});
              }
            }
            return out;
          });
  for (const std::vector<WitnessEntry>& chunk : witness_chunks) {
    for (const WitnessEntry& w : chunk) {
      witness_[funcs[w.first]] = w.second;
    }
  }

  BlockStopReport report = ReportShell();

  // Context fixpoint as a parallel BFS over (function, entry-bit) pairs.
  // A pair's effects depend only on the function body and the frozen
  // may-block set — never on other contexts — so each pair is evaluated
  // exactly once, when its bit first appears. The round barrier is the
  // global convergence barrier; merging per-chunk effects in chunk order
  // keeps frontier construction deterministic.
  std::vector<uint8_t> contexts(n, 1);
  std::vector<std::pair<size_t, uint8_t>> frontier;
  frontier.reserve(n + cg_->irq_entries().size());
  for (size_t i = 0; i < n; ++i) {
    frontier.push_back({i, uint8_t{1}});
  }
  std::set<size_t> irq_atomic;
  for (const FuncDecl* fn : cg_->irq_entries()) {
    if (!fn->attrs.noblock) {
      size_t i = sharder.IndexOf(fn);
      if (i < n) {
        irq_atomic.insert(i);
      }
    }
  }
  // Imported atomic-entry facts seed exactly like irq entries do.
  for (size_t i = 0; i < n; ++i) {
    if (funcs[i]->attrs.entered_atomic && !funcs[i]->attrs.noblock) {
      irq_atomic.insert(i);
    }
  }
  for (size_t i : irq_atomic) {
    contexts[i] |= 2;
    frontier.push_back({i, uint8_t{2}});
  }

  std::map<const Expr*, BlockingViolation> reported;
  std::map<const Expr*, BlockingViolation> silenced;
  while (!frontier.empty()) {
    ++report.context_rounds;
    std::vector<std::vector<EntryEffects>> per_chunk = sharder.MapChunks<EntryEffects>(
        wq, frontier.size(), [this, &frontier, &funcs](int, size_t begin, size_t end) {
          std::vector<EntryEffects> out;
          out.reserve(end - begin);
          for (size_t i = begin; i < end; ++i) {
            out.push_back(EvaluateEntry(funcs[frontier[i].first], frontier[i].second));
          }
          return out;
        });
    std::vector<std::pair<size_t, uint8_t>> next;
    for (std::vector<EntryEffects>& chunk : per_chunk) {
      for (EntryEffects& effects : chunk) {
        for (auto& [callee, add] : effects.callee_bits) {
          size_t ci = sharder.IndexOf(callee);
          if (ci >= n) {
            // Declared-only callee: never walked here, but the observed
            // entry bits are the top-down link export (an OR, so chunk
            // order cannot matter).
            if (callee->body == nullptr && !callee->is_builtin) {
              report.extern_entry_bits[callee->name] |= add;
            }
            continue;
          }
          uint8_t newbits = static_cast<uint8_t>(add & ~contexts[ci]);
          if (newbits == 0) {
            continue;
          }
          contexts[ci] |= add;
          for (uint8_t bit : {uint8_t{1}, uint8_t{2}}) {
            if ((newbits & bit) != 0) {
              next.push_back({ci, bit});
            }
          }
        }
        for (auto& [expr, v] : effects.reported) {
          reported.emplace(expr, std::move(v));
        }
        for (auto& [expr, v] : effects.silenced) {
          silenced.emplace(expr, std::move(v));
        }
      }
    }
    frontier = std::move(next);
  }
  FinishReport(&report, std::move(reported), std::move(silenced));
  return report;
}

std::string BlockStopReport::ToString() const {
  std::string out;
  out += "BlockStop: " + std::to_string(num_defined_funcs) + " functions, " +
         std::to_string(callgraph_edges) + " call edges, " + std::to_string(indirect_sites) +
         " indirect sites (" + std::to_string(indirect_target_total) + " candidate targets), " +
         std::to_string(mayblock.size()) + " may-block functions\n";
  out += "  potential bugs (blocking call in atomic context): " +
         std::to_string(violations.size()) + "\n";
  for (const BlockingViolation& v : violations) {
    out += "    " + v.caller + " -> " + v.callee + " (" + v.witness + ")" +
           (v.via_indirect ? " [via function pointer]" : "") + "\n";
  }
  out += "  false positives silenced by " + std::to_string(runtime_checks) +
         " run-time checks: " + std::to_string(silenced.size()) + "\n";
  for (const BlockingViolation& v : silenced) {
    out += "    " + v.caller + " -> " + v.callee + " (" + v.witness + ") [silenced]\n";
  }
  return out;
}

std::vector<Finding> BlockStopReport::ToFindings() const {
  std::vector<Finding> out;
  auto convert = [](const BlockingViolation& v, FindingSeverity sev,
                    const std::string& suffix) {
    Finding f;
    f.tool = "blockstop";
    f.severity = sev;
    f.loc = v.loc;
    f.message = "call may block in atomic context" + suffix +
                (v.via_indirect ? " [via function pointer]" : "");
    f.witness = {v.caller, v.callee, v.witness};
    return f;
  };
  for (const BlockingViolation& v : violations) {
    out.push_back(convert(v, FindingSeverity::kError, ""));
  }
  for (const BlockingViolation& v : silenced) {
    out.push_back(convert(v, FindingSeverity::kNote, " (silenced by run-time check)"));
  }
  return out;
}

}  // namespace ivy
