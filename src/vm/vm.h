// The Ivy tree-walking VM: a deterministic interpreter for lowered Mini-C
// programs over the shared Machine runtime (src/vm/machine.h) — the kernel
// model (IRQ flag, spinlocks, interrupt dispatch) and the CCount heap live
// there. It is the "hardware + modified allocator" of the paper's
// experimental setup: Deputy checks and CCount updates execute here, their
// cycle costs accumulate here, and the run-time halves of all three tools
// (check traps, bad-free logging, might-sleep-while-atomic panics) fire here.
// The bytecode interpreter (src/bc/bcvm.h) is the drop-in fast path; both
// must produce identical VmResults on every program.
#ifndef SRC_VM_VM_H_
#define SRC_VM_VM_H_

#include <string>
#include <vector>

#include "src/vm/machine.h"

namespace ivy {

class Vm : public Machine {
 public:
  Vm(const IrModule* module, const TypeLayoutRegistry* layouts, VmConfig cfg);

 private:
  struct Frame {
    const IrFunc* fn = nullptr;
    int block = 0;
    size_t ip = 0;
    std::vector<int64_t> regs;
    uint64_t base = 0;
    int ret_dst = -1;
    int delayed_at_entry = 0;
  };

  int64_t ExecEntry(int func_id, const std::vector<int64_t>& args) override;
  int64_t ExecIrqHandler(int func_id, int64_t arg) override;

  int64_t ExecFunction(int func_id, const std::vector<int64_t>& args);
  void PushFrame(std::vector<Frame>* frames, int func_id,
                 const std::vector<int64_t>& args, int ret_dst);
  void PopFrameStack(const Frame& f);

  const IrModule* module_;
};

}  // namespace ivy

#endif  // SRC_VM_VM_H_
