// The Ivy VM: a deterministic interpreter for lowered Mini-C programs with a
// kernel runtime model (IRQ flag, spinlocks, interrupt dispatch) and the
// CCount heap. It is the "hardware + modified allocator" of the paper's
// experimental setup: Deputy checks and CCount updates execute here, their
// cycle costs accumulate here, and the run-time halves of all three tools
// (check traps, bad-free logging, might-sleep-while-atomic panics) fire here.
#ifndef SRC_VM_VM_H_
#define SRC_VM_VM_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ccount/layouts.h"
#include "src/ir/ir.h"
#include "src/vm/builtins.h"
#include "src/vm/cost.h"
#include "src/vm/heap.h"
#include "src/vm/memory.h"

namespace ivy {

struct VmConfig {
  bool ccount = false;        // maintain refcounts + verify frees
  bool smp = false;           // refcount updates use locked-op cost
  bool track_locals = false;  // count references from stack slots (footnote 2)
  int rc_width_bits = 8;      // shadow counter width (A3 ablation)
  bool atomic_sleep_check = true;  // might_sleep() traps in atomic context
  uint64_t mem_bytes = 64ull << 20;
  uint64_t stack_bytes = 1ull << 20;
  int64_t stack_limit = 256 << 10;  // kCheckStack budget (bytes)
  int64_t max_steps = 400'000'000;  // deterministic watchdog
  CostModel cost;
};

struct VmResult {
  bool ok = false;
  int64_t value = 0;
  TrapKind trap = TrapKind::kNone;
  SourceLoc trap_loc;
  std::string trap_msg;
  int64_t cycles = 0;
  int64_t steps = 0;
};

// How each spinlock/mutex has been used; input to LockSafe's IRQ invariant.
struct LockUsage {
  bool in_irq = false;            // acquired inside an interrupt handler
  bool process_irqs_on = false;   // acquired in process context, IRQs enabled
  bool process_irqs_off = false;  // acquired in process context, IRQs disabled
};

class Vm {
 public:
  Vm(const IrModule* module, const TypeLayoutRegistry* layouts, VmConfig cfg);

  // Runs `name(args...)` to completion (or trap). The VM keeps all state
  // (memory, heap, cycles) across calls, so a boot function followed by
  // workload functions models one kernel run.
  VmResult Call(const std::string& name, const std::vector<int64_t>& args = {});
  VmResult CallId(int func_id, const std::vector<int64_t>& args = {});

  int64_t cycles() const { return cycles_; }
  Heap& heap() { return *heap_; }
  const Heap& heap() const { return *heap_; }
  Memory& memory() { return *mem_; }
  const std::string& log() const { return log_; }
  void ClearLog() { log_.clear(); }
  bool irqs_enabled() const { return irq_enabled_; }
  int64_t context_switches() const { return ctx_switches_; }

  // LockSafe runtime inputs.
  const std::set<std::pair<uint64_t, uint64_t>>& lock_order_edges() const {
    return lock_order_edges_;
  }
  const std::unordered_map<uint64_t, LockUsage>& lock_usage() const { return lock_usage_; }

  // The count of might-sleep checks that executed (dynamic BlockStop events).
  int64_t might_sleep_checks() const { return might_sleep_checks_; }

 private:
  struct Trap {
    TrapKind kind;
    SourceLoc loc;
    std::string msg;
  };

  struct Frame {
    const IrFunc* fn = nullptr;
    int block = 0;
    size_t ip = 0;
    std::vector<int64_t> regs;
    uint64_t base = 0;
    int ret_dst = -1;
    int delayed_at_entry = 0;
  };

  void SetupMemory();
  int64_t ExecFunction(int func_id, const std::vector<int64_t>& args);
  void PushFrame(std::vector<Frame>* frames, int func_id,
                 const std::vector<int64_t>& args, int ret_dst);
  void PopFrameStack(const Frame& f);
  int64_t DoIntrinsic(const Instr& in, const std::vector<int64_t>& args);
  void CheckMightSleep(SourceLoc loc, const char* what);
  void DoStorePtr(uint64_t addr, int64_t value, SourceLoc loc);
  void ValidAccess(uint64_t addr, uint64_t bytes, SourceLoc loc);
  std::string ReadCString(uint64_t addr, size_t cap = 4096);
  void ChargeRc(int64_t n);
  void TypedMemWrite(uint64_t dst, uint64_t n);   // pre-write RC maintenance
  void TypedMemReinc(uint64_t dst, uint64_t n);   // post-copy RC maintenance
  const std::vector<int64_t>* PtrOffsetsFor(uint64_t addr, uint64_t n, uint64_t* obj_base);
  void AcquireLock(uint64_t lock_addr, bool is_spin, SourceLoc loc);
  void ReleaseLock(uint64_t lock_addr, bool is_spin, SourceLoc loc);

  const IrModule* module_;
  const TypeLayoutRegistry* layouts_;
  VmConfig cfg_;
  std::unique_ptr<Memory> mem_;
  std::unique_ptr<Heap> heap_;
  std::vector<uint64_t> string_addrs_;
  std::vector<uint8_t> user_mem_;

  int64_t cycles_ = 0;
  int64_t steps_ = 0;
  std::string log_;
  bool irq_enabled_ = true;
  int in_irq_ = 0;
  int preempt_depth_ = 0;
  uint64_t stack_top_ = 0;
  int64_t ctx_switches_ = 0;
  int64_t might_sleep_checks_ = 0;
  std::vector<uint64_t> held_locks_;  // spinlocks + mutexes, in acquire order
  std::set<uint64_t> held_set_;
  std::set<std::pair<uint64_t, uint64_t>> lock_order_edges_;
  std::unordered_map<uint64_t, LockUsage> lock_usage_;
  std::unordered_map<std::string, int> func_ids_;
  // Scratch buffer of pointer offsets for globals (TypedMemWrite).
  std::vector<int64_t> scratch_offsets_;
};

}  // namespace ivy

#endif  // SRC_VM_VM_H_
