// The kernel substrate API: builtin ("intrinsic") functions the VM provides
// to Mini-C programs. These model the parts of Linux the paper's tools treat
// specially: the allocator (kmalloc/kfree — CCount's hooks, §2.2), the
// blocking primitives (BlockStop's seeds, §2.3), IRQ/spinlock state, and the
// paper's run-time check function that panics when interrupts are disabled.
//
// The Mini-C declarations (with their Deputy/BlockStop annotations) live in
// the prelude source (src/kernel/prelude.cc); this header is the C++ side.
#ifndef SRC_VM_BUILTINS_H_
#define SRC_VM_BUILTINS_H_

#include <cstdint>
#include <string>

namespace ivy {

enum class Builtin : int32_t {
  kKmalloc = 0,          // void* kmalloc(int size, int flags) blocking_if(flags)
  kKfree,                // void kfree(void* opt p)
  kMemset,               // void memset(char* count(n) p, int c, int n)
  kMemcpy,               // void memcpy(char* count(n) dst, char* count(n) src, int n)
  kPrintk,               // int printk(char* nullterm fmt, ...)
  kPanic,                // void panic(char* nullterm msg)
  kAssert,               // void __assert(int cond)
  kLocalIrqSave,         // int local_irq_save()
  kLocalIrqRestore,      // void local_irq_restore(int flags)
  kLocalIrqDisable,      // void local_irq_disable()
  kLocalIrqEnable,       // void local_irq_enable()
  kIrqsDisabled,         // int irqs_disabled()
  kSpinLock,             // void spin_lock(int* lock)
  kSpinUnlock,           // void spin_unlock(int* lock)
  kSpinLockIrqsave,      // int spin_lock_irqsave(int* lock)
  kSpinUnlockIrqrestore, // void spin_unlock_irqrestore(int* lock, int flags)
  kMutexLock,            // void mutex_lock(int* m) blocking
  kMutexUnlock,          // void mutex_unlock(int* m)
  kMightSleep,           // void might_sleep() blocking
  kSchedule,             // void schedule() blocking
  kMsleep,               // void msleep(int ms) blocking
  kUdelay,               // void udelay(int us)  (busy wait; not blocking)
  kWaitEvent,            // void wait_event(int* q) blocking
  kWakeUp,               // void wake_up(int* q)
  kWaitForCompletion,    // void wait_for_completion(int* c) blocking
  kComplete,             // void complete(int* c)
  kCopyToUser,           // int copy_to_user(int uaddr, char* count(n) src, int n) blocking
  kCopyFromUser,         // int copy_from_user(char* count(n) dst, int uaddr, int n) blocking
  kAssertNonatomic,      // void assert_nonatomic()  -- §2.3's runtime check
  kTriggerIrq,           // void trigger_irq(irq_handler* h, int arg)
  kAtomicInc,            // void atomic_inc(int* v)
  kAtomicDecAndTest,     // int atomic_dec_and_test(int* v)
  kCycles,               // int __cycles()
  kRcOf,                 // int __rc_of(void* opt p)
  kGoodFrees,            // int __good_frees()
  kBadFrees,             // int __bad_frees()
  kContextSwitch,        // void context_switch(void* prev, void* next)
  kCount_,               // sentinel
};

constexpr int kNumBuiltins = static_cast<int>(Builtin::kCount_);

// Returns the builtin id for `name`, or -1. Used as Sema's BuiltinResolver.
int BuiltinIdForName(const std::string& name);

// Human-readable name for reports.
const char* BuiltinName(Builtin b);

// True if the builtin unconditionally may block (BlockStop seed set).
bool BuiltinIsBlocking(Builtin b);

// Returns the parameter index whose GFP_WAIT bit controls blocking, or -1.
int BuiltinBlockingIfParam(Builtin b);

}  // namespace ivy

#endif  // SRC_VM_BUILTINS_H_
