#include "src/vm/machine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace ivy {

namespace {
constexpr int64_t kGfpWait = 1;  // GFP_WAIT bit (prelude's enum value)
}

std::vector<GlobalInit> GlobalInitsFromModule(const IrModule& m) {
  std::vector<GlobalInit> inits;
  for (const GlobalSlot& g : m.globals) {
    const Expr* init = g.decl != nullptr ? g.decl->init : nullptr;
    if (init == nullptr) {
      continue;
    }
    if (init->is_const) {
      GlobalInit gi;
      gi.addr = g.addr;
      gi.size = g.decl->type->IsChar() ? 1 : 8;
      gi.value = init->int_val;
      inits.push_back(gi);
    } else if (init->kind == ExprKind::kStrLit) {
      // Find the string in the pool (lowering interned it when the global
      // was lowered; globals are set up before any code runs, so search).
      for (size_t i = 0; i < m.string_pool.size(); ++i) {
        if (m.string_pool[i] == init->str_val) {
          GlobalInit gi;
          gi.addr = g.addr;
          gi.size = 8;
          gi.is_string = 1;
          gi.value = static_cast<int64_t>(i);
          inits.push_back(gi);
          break;
        }
      }
    }
  }
  return inits;
}

Machine::Machine(const TypeLayoutRegistry* layouts, VmConfig cfg)
    : layouts_(layouts), cfg_(cfg) {}

Machine::~Machine() = default;

void Machine::SetupMemory(uint64_t globals_end, const std::vector<std::string>& string_pool,
                          const std::vector<GlobalSlot>* globals,
                          const std::vector<GlobalInit>& inits) {
  globals_ = globals;
  mem_ = std::make_unique<Memory>(cfg_.mem_bytes);
  // Rodata: string literals after the globals.
  uint64_t addr = (globals_end + 15) / 16 * 16;
  string_addrs_.clear();
  for (const std::string& s : string_pool) {
    string_addrs_.push_back(addr);
    for (size_t i = 0; i < s.size(); ++i) {
      mem_->Write(addr + i, static_cast<unsigned char>(s[i]), 1);
    }
    mem_->Write(addr + s.size(), 0, 1);
    addr = (addr + s.size() + 1 + 7) / 8 * 8;
  }
  mem_->globals_end = addr;
  mem_->stack_base = (addr + 4095) / 4096 * 4096;
  mem_->stack_size = cfg_.stack_bytes;
  mem_->heap_base = mem_->stack_base + mem_->stack_size;
  stack_top_ = mem_->stack_base;
  heap_ = std::make_unique<Heap>(mem_.get(), layouts_, cfg_.ccount, cfg_.rc_width_bits);
  // Global initializers (constants and string literals).
  for (const GlobalInit& g : inits) {
    if (g.is_string != 0) {
      if (static_cast<size_t>(g.value) < string_addrs_.size()) {
        mem_->Write(g.addr, static_cast<int64_t>(string_addrs_[static_cast<size_t>(g.value)]),
                    8);
      }
    } else {
      mem_->Write(g.addr, g.value, g.size);
    }
  }
}

void Machine::ChargeRc(int64_t n) {
  cycles_ += n * (cfg_.smp ? cfg_.cost.rc_op_atomic : cfg_.cost.rc_op);
}

void Machine::ValidAccess(uint64_t addr, uint64_t bytes, SourceLoc loc) {
  if (!mem_->Valid(addr, bytes)) {
    throw Trap{addr < 4096 ? TrapKind::kNullDeref : TrapKind::kMemFault, loc,
               "access at address " + std::to_string(addr)};
  }
}

std::string Machine::ReadCString(uint64_t addr, size_t cap) {
  std::string out;
  while (out.size() < cap && mem_->Valid(addr, 1)) {
    char c = static_cast<char>(mem_->Read(addr, 1));
    if (c == 0) {
      break;
    }
    out.push_back(c);
    ++addr;
  }
  return out;
}

void Machine::DoStorePtr(uint64_t addr, int64_t value, SourceLoc loc) {
  ValidAccess(addr, 8, loc);
  DoStorePtrUnchecked(addr, value);
}

void Machine::DoStorePtrUnchecked(uint64_t addr, int64_t value) {
  if (heap_->ccount()) {
    bool tracked = cfg_.track_locals || !mem_->InStack(addr);
    if (tracked) {
      int64_t old = mem_->Read(addr, 8);
      heap_->RcWrite(static_cast<uint64_t>(old), static_cast<uint64_t>(value));
      ChargeRc(2);
    }
  }
  mem_->Write(addr, value, 8);
  cycles_ += cfg_.cost.store;
}

const std::vector<int64_t>* Machine::PtrOffsetsFor(uint64_t addr, uint64_t /*n*/,
                                                   uint64_t* obj_base) {
  // Heap object?
  const HeapObject* obj = heap_->Find(addr);
  if (obj != nullptr) {
    *obj_base = obj->base;
    if (obj->type_id >= 0) {
      const TypeLayout* layout = layouts_->Get(obj->type_id);
      if (layout != nullptr && layout->stride > 0) {
        // Expand the per-record offsets across the object into scratch.
        scratch_offsets_.clear();
        for (int64_t rec = 0; rec + layout->stride <= obj->size; rec += layout->stride) {
          for (int64_t off : layout->ptr_offsets) {
            scratch_offsets_.push_back(rec + off);
          }
        }
        return &scratch_offsets_;
      }
    }
    if (obj->type_id == kTypeIdAllPtr) {
      scratch_offsets_.clear();
      for (int64_t off = 0; off + 8 <= obj->size; off += 8) {
        scratch_offsets_.push_back(off);
      }
      return &scratch_offsets_;
    }
    scratch_offsets_.clear();
    return &scratch_offsets_;  // no pointers known
  }
  // Global?
  if (globals_ != nullptr) {
    for (const GlobalSlot& g : *globals_) {
      if (addr >= g.addr && addr < g.addr + static_cast<uint64_t>(g.size)) {
        *obj_base = g.addr;
        return &g.ptr_offsets;
      }
    }
  }
  *obj_base = addr;
  scratch_offsets_.clear();
  return &scratch_offsets_;
}

void Machine::TypedMemWrite(uint64_t dst, uint64_t n) {
  if (!heap_->ccount()) {
    return;
  }
  if (mem_->InStack(dst) && !cfg_.track_locals) {
    return;
  }
  uint64_t base = 0;
  const std::vector<int64_t>* offsets = PtrOffsetsFor(dst, n, &base);
  for (int64_t off : *offsets) {
    uint64_t slot = base + static_cast<uint64_t>(off);
    if (slot >= dst && slot + 8 <= dst + n) {
      int64_t old = mem_->Read(slot, 8);
      if (mem_->Countable(static_cast<uint64_t>(old))) {
        heap_->RcWrite(static_cast<uint64_t>(old), 0);
        ChargeRc(1);
      }
    }
  }
}

void Machine::TypedMemReinc(uint64_t dst, uint64_t n) {
  if (!heap_->ccount()) {
    return;
  }
  if (mem_->InStack(dst) && !cfg_.track_locals) {
    return;
  }
  uint64_t base = 0;
  const std::vector<int64_t>* offsets = PtrOffsetsFor(dst, n, &base);
  for (int64_t off : *offsets) {
    uint64_t slot = base + static_cast<uint64_t>(off);
    if (slot >= dst && slot + 8 <= dst + n) {
      int64_t v = mem_->Read(slot, 8);
      if (mem_->Countable(static_cast<uint64_t>(v))) {
        heap_->RcWrite(0, static_cast<uint64_t>(v));
        ChargeRc(1);
      }
    }
  }
}

void Machine::CheckMightSleep(SourceLoc loc, const char* what) {
  ++might_sleep_checks_;
  if (!cfg_.atomic_sleep_check) {
    return;
  }
  if (!irq_enabled_ || in_irq_ > 0 || preempt_depth_ > 0) {
    throw Trap{TrapKind::kMightSleepAtomic, loc,
               std::string(what) + " called in atomic context (irqs " +
                   (irq_enabled_ ? "on" : "off") + ", in_irq=" + std::to_string(in_irq_) +
                   ", preempt=" + std::to_string(preempt_depth_) + ")"};
  }
}

void Machine::AcquireLock(uint64_t lock_addr, bool is_spin, SourceLoc loc) {
  if (held_set_.count(lock_addr) != 0) {
    throw Trap{TrapKind::kDeadlock, loc,
               "recursive acquisition of lock @" + std::to_string(lock_addr)};
  }
  for (uint64_t held : held_locks_) {
    lock_order_edges_.insert({held, lock_addr});
  }
  held_locks_.push_back(lock_addr);
  held_set_.insert(lock_addr);
  LockUsage& usage = lock_usage_[lock_addr];
  if (in_irq_ > 0) {
    usage.in_irq = true;
  } else if (irq_enabled_) {
    usage.process_irqs_on = true;
  } else {
    usage.process_irqs_off = true;
  }
  ValidAccess(lock_addr, 8, loc);
  mem_->Write(lock_addr, 1, 8);
  if (is_spin) {
    ++preempt_depth_;
  }
  cycles_ += cfg_.cost.lock_op;
}

void Machine::ReleaseLock(uint64_t lock_addr, bool is_spin, SourceLoc loc) {
  auto it = std::find(held_locks_.rbegin(), held_locks_.rend(), lock_addr);
  if (it == held_locks_.rend()) {
    throw Trap{TrapKind::kAssertFail, loc,
               "release of lock @" + std::to_string(lock_addr) + " that is not held"};
  }
  held_locks_.erase(std::next(it).base());
  held_set_.erase(lock_addr);
  ValidAccess(lock_addr, 8, loc);
  mem_->Write(lock_addr, 0, 8);
  if (is_spin) {
    --preempt_depth_;
  }
  cycles_ += cfg_.cost.lock_op;
}

VmResult Machine::Call(const std::string& name, const std::vector<int64_t>& args) {
  auto it = func_ids_.find(name);
  if (it == func_ids_.end()) {
    VmResult r;
    r.trap = TrapKind::kBadIndirectCall;
    r.trap_msg = "no such function: " + name;
    return r;
  }
  return CallId(it->second, args);
}

VmResult Machine::CallId(int func_id, const std::vector<int64_t>& args) {
  VmResult r;
  try {
    r.value = ExecEntry(func_id, args);
    r.ok = true;
  } catch (const Trap& t) {
    r.ok = false;
    r.trap = t.kind;
    r.trap_loc = t.loc;
    r.trap_msg = t.msg;
  }
  r.cycles = cycles_;
  r.steps = steps_;
  return r;
}

int64_t Machine::DoIntrinsic(Builtin b, SourceLoc loc, int32_t alloc_type_id,
                             const int64_t* args, size_t nargs) {
  auto arg = [args, nargs](size_t i) -> int64_t { return i < nargs ? args[i] : 0; };
  switch (b) {
    case Builtin::kKmalloc: {
      int64_t size = arg(0);
      int64_t flags = arg(1);
      if ((flags & kGfpWait) != 0) {
        CheckMightSleep(loc, "kmalloc(GFP_WAIT)");
      }
      uint64_t p = heap_->Alloc(size, alloc_type_id);
      cycles_ += cfg_.cost.kmalloc + size * cfg_.cost.zero_per_byte_q / 4;
      return static_cast<int64_t>(p);
    }
    case Builtin::kKfree: {
      uint64_t p = static_cast<uint64_t>(arg(0));
      if (p == 0) {
        return 0;  // kfree(NULL) is a no-op, as in Linux
      }
      cycles_ += cfg_.cost.kfree;
      if (heap_->ccount()) {
        const HeapObject* obj = heap_->FindBase(p);
        if (obj != nullptr) {
          cycles_ += (obj->size / 32 + 1) * cfg_.cost.free_scan_per_32b;
        }
      }
      heap_->Free(p, loc);
      return 0;
    }
    case Builtin::kMemset: {
      uint64_t p = static_cast<uint64_t>(arg(0));
      int64_t c = arg(1);
      uint64_t n = static_cast<uint64_t>(arg(2));
      if (n == 0) {
        return 0;
      }
      ValidAccess(p, n, loc);
      TypedMemWrite(p, n);
      for (uint64_t i = 0; i < n; ++i) {
        mem_->Write(p + i, c & 0xff, 1);
      }
      cycles_ += static_cast<int64_t>(n) * cfg_.cost.copy_per_byte_q / 4 + 4;
      return 0;
    }
    case Builtin::kMemcpy: {
      uint64_t dst = static_cast<uint64_t>(arg(0));
      uint64_t src = static_cast<uint64_t>(arg(1));
      uint64_t n = static_cast<uint64_t>(arg(2));
      if (n == 0) {
        return 0;
      }
      ValidAccess(dst, n, loc);
      ValidAccess(src, n, loc);
      TypedMemWrite(dst, n);
      std::memmove(mem_->data() + dst, mem_->data() + src, n);
      TypedMemReinc(dst, n);
      cycles_ += static_cast<int64_t>(n) * cfg_.cost.copy_per_byte_q / 4 + 4;
      return 0;
    }
    case Builtin::kPrintk: {
      std::string fmt = ReadCString(static_cast<uint64_t>(arg(0)));
      std::string out;
      size_t argi = 1;
      for (size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] != '%' || i + 1 >= fmt.size()) {
          out.push_back(fmt[i]);
          continue;
        }
        char spec = fmt[++i];
        char buf[32];
        switch (spec) {
          case 'd':
            std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(arg(argi++)));
            out += buf;
            break;
          case 'x':
            std::snprintf(buf, sizeof buf, "%llx",
                          static_cast<unsigned long long>(arg(argi++)));
            out += buf;
            break;
          case 'c':
            out.push_back(static_cast<char>(arg(argi++)));
            break;
          case 's':
            out += ReadCString(static_cast<uint64_t>(arg(argi++)));
            break;
          case '%':
            out.push_back('%');
            break;
          default:
            out.push_back('%');
            out.push_back(spec);
        }
      }
      log_ += out;
      cycles_ += static_cast<int64_t>(out.size()) * cfg_.cost.printk_per_char_q / 4 + 8;
      return static_cast<int64_t>(out.size());
    }
    case Builtin::kPanic:
      throw Trap{TrapKind::kPanic, loc,
                 "panic: " + ReadCString(static_cast<uint64_t>(arg(0)))};
    case Builtin::kAssert:
      if (arg(0) == 0) {
        throw Trap{TrapKind::kAssertFail, loc, "__assert failed"};
      }
      return 0;
    case Builtin::kLocalIrqSave: {
      int64_t prev = irq_enabled_ ? 1 : 0;
      irq_enabled_ = false;
      cycles_ += cfg_.cost.irq_op;
      return prev;
    }
    case Builtin::kLocalIrqRestore:
      irq_enabled_ = arg(0) != 0;
      cycles_ += cfg_.cost.irq_op;
      return 0;
    case Builtin::kLocalIrqDisable:
      irq_enabled_ = false;
      cycles_ += cfg_.cost.irq_op;
      return 0;
    case Builtin::kLocalIrqEnable:
      irq_enabled_ = true;
      cycles_ += cfg_.cost.irq_op;
      return 0;
    case Builtin::kIrqsDisabled:
      cycles_ += cfg_.cost.op;
      return irq_enabled_ ? 0 : 1;
    case Builtin::kSpinLock:
      AcquireLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/true, loc);
      return 0;
    case Builtin::kSpinUnlock:
      ReleaseLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/true, loc);
      return 0;
    case Builtin::kSpinLockIrqsave: {
      int64_t prev = irq_enabled_ ? 1 : 0;
      irq_enabled_ = false;
      cycles_ += cfg_.cost.irq_op;
      AcquireLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/true, loc);
      return prev;
    }
    case Builtin::kSpinUnlockIrqrestore:
      ReleaseLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/true, loc);
      irq_enabled_ = arg(1) != 0;
      cycles_ += cfg_.cost.irq_op;
      return 0;
    case Builtin::kMutexLock:
      CheckMightSleep(loc, "mutex_lock");
      AcquireLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/false, loc);
      return 0;
    case Builtin::kMutexUnlock:
      ReleaseLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/false, loc);
      return 0;
    case Builtin::kMightSleep:
      CheckMightSleep(loc, "might_sleep");
      return 0;
    case Builtin::kSchedule:
      CheckMightSleep(loc, "schedule");
      cycles_ += cfg_.cost.context_switch;
      ++ctx_switches_;
      return 0;
    case Builtin::kMsleep:
      CheckMightSleep(loc, "msleep");
      cycles_ += arg(0) * 1000;
      return 0;
    case Builtin::kUdelay:
      cycles_ += arg(0) * 100;
      return 0;
    case Builtin::kWaitEvent:
      CheckMightSleep(loc, "wait_event");
      cycles_ += cfg_.cost.context_switch;
      return 0;
    case Builtin::kWakeUp:
      ValidAccess(static_cast<uint64_t>(arg(0)), 8, loc);
      mem_->Write(static_cast<uint64_t>(arg(0)), 1, 8);
      cycles_ += cfg_.cost.op * 4;
      return 0;
    case Builtin::kWaitForCompletion: {
      CheckMightSleep(loc, "wait_for_completion");
      uint64_t c = static_cast<uint64_t>(arg(0));
      ValidAccess(c, 8, loc);
      mem_->Write(c, 0, 8);  // consume
      cycles_ += cfg_.cost.context_switch;
      return 0;
    }
    case Builtin::kComplete:
      ValidAccess(static_cast<uint64_t>(arg(0)), 8, loc);
      mem_->Write(static_cast<uint64_t>(arg(0)), 1, 8);
      cycles_ += cfg_.cost.op * 4;
      return 0;
    case Builtin::kCopyToUser: {
      CheckMightSleep(loc, "copy_to_user");
      uint64_t uaddr = static_cast<uint64_t>(arg(0));
      uint64_t src = static_cast<uint64_t>(arg(1));
      uint64_t n = static_cast<uint64_t>(arg(2));
      if (n > 0) {
        ValidAccess(src, n, loc);
        if (uaddr + n > user_mem_.size()) {
          user_mem_.resize(std::min<uint64_t>(uaddr + n, 16ull << 20), 0);
        }
        if (uaddr + n <= user_mem_.size()) {
          std::memcpy(user_mem_.data() + uaddr, mem_->data() + src, n);
        }
        cycles_ += static_cast<int64_t>(n) * cfg_.cost.user_copy_per_byte_q / 4 + 8;
      }
      return 0;
    }
    case Builtin::kCopyFromUser: {
      CheckMightSleep(loc, "copy_from_user");
      uint64_t dst = static_cast<uint64_t>(arg(0));
      uint64_t uaddr = static_cast<uint64_t>(arg(1));
      uint64_t n = static_cast<uint64_t>(arg(2));
      if (n > 0) {
        ValidAccess(dst, n, loc);
        TypedMemWrite(dst, n);
        for (uint64_t i = 0; i < n; ++i) {
          uint8_t byte = uaddr + i < user_mem_.size() ? user_mem_[uaddr + i] : 0;
          mem_->Write(dst + i, byte, 1);
        }
        cycles_ += static_cast<int64_t>(n) * cfg_.cost.user_copy_per_byte_q / 4 + 8;
      }
      return 0;
    }
    case Builtin::kAssertNonatomic:
      cycles_ += cfg_.cost.check;
      if (!irq_enabled_ || in_irq_ > 0) {
        throw Trap{TrapKind::kPanic, loc,
                   "assert_nonatomic: called with interrupts disabled"};
      }
      return 0;
    case Builtin::kTriggerIrq: {
      uint64_t h = static_cast<uint64_t>(arg(0));
      if (h < kFuncPtrBase || h - kFuncPtrBase >= num_funcs_) {
        throw Trap{TrapKind::kBadIndirectCall, loc, "trigger_irq: bad handler"};
      }
      bool saved = irq_enabled_;
      irq_enabled_ = false;
      ++in_irq_;
      cycles_ += cfg_.cost.irq_entry;
      ExecIrqHandler(static_cast<int>(h - kFuncPtrBase), arg(1));
      --in_irq_;
      irq_enabled_ = saved;
      return 0;
    }
    case Builtin::kAtomicInc: {
      uint64_t p = static_cast<uint64_t>(arg(0));
      ValidAccess(p, 8, loc);
      mem_->Write(p, mem_->Read(p, 8) + 1, 8);
      cycles_ += cfg_.cost.atomic_op;
      return 0;
    }
    case Builtin::kAtomicDecAndTest: {
      uint64_t p = static_cast<uint64_t>(arg(0));
      ValidAccess(p, 8, loc);
      int64_t v = mem_->Read(p, 8) - 1;
      mem_->Write(p, v, 8);
      cycles_ += cfg_.cost.atomic_op;
      return v == 0 ? 1 : 0;
    }
    case Builtin::kCycles:
      return cycles_;
    case Builtin::kRcOf:
      return heap_->RcOf(static_cast<uint64_t>(arg(0)));
    case Builtin::kGoodFrees:
      return heap_->stats().frees_good;
    case Builtin::kBadFrees:
      return heap_->stats().frees_bad;
    case Builtin::kContextSwitch:
      cycles_ += cfg_.cost.context_switch;
      ++ctx_switches_;
      return 0;
    case Builtin::kCount_:
      break;
  }
  throw Trap{TrapKind::kUnreachable, loc, "unknown intrinsic"};
}

}  // namespace ivy
