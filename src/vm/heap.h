// The CCount-instrumented kernel heap (§2.2).
//
// This is the paper's "modified kmalloc, kfree and slab allocators":
//  * allocations are 16-byte aligned and zeroed (so later pointer writes do
//    not decrement random reference counts),
//  * every free first drops the object's *outgoing* references (using the
//    TypeLayoutRegistry RTTI), then verifies that no inbound references
//    remain in the shadow counters,
//  * a bad free is logged and the object is leaked ("on failure, we log an
//    error and (optionally) leak the object to guarantee soundness"),
//  * `delayed_free { }` scopes queue frees and run all decrements before any
//    check, which is what makes cyclic structures verifiable.
#ifndef SRC_VM_HEAP_H_
#define SRC_VM_HEAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ccount/layouts.h"
#include "src/support/source.h"
#include "src/vm/memory.h"

namespace ivy {

struct HeapObject {
  uint64_t base = 0;
  int64_t size = 0;        // rounded up to 16
  int32_t type_id = kTypeIdUnknown;
  enum class State { kLive, kFreed, kLeaked } state = State::kLive;
};

// One aggregated bad-free report site (file/line of the kfree call).
struct BadFreeSite {
  SourceLoc loc;
  int64_t count = 0;
  int64_t inbound_refs = 0;  // residual references seen at the last report
};

struct HeapStats {
  int64_t allocs = 0;
  int64_t frees_attempted = 0;
  int64_t frees_good = 0;
  int64_t frees_bad = 0;
  int64_t frees_deferred = 0;  // routed through delayed_free scopes
  int64_t bytes_live = 0;
  int64_t bytes_peak = 0;
  int64_t rc_increments = 0;
  int64_t rc_decrements = 0;
};

class Heap {
 public:
  // `rc_width_bits` narrows the shadow counters for the A3 ablation
  // (8 = the paper's scheme; counters wrap mod 2^width).
  Heap(Memory* mem, const TypeLayoutRegistry* layouts, bool ccount_enabled,
       int rc_width_bits = 8);

  // Allocates `size` bytes (16-byte aligned, zeroed). Returns 0 on OOM.
  uint64_t Alloc(int64_t size, int32_t type_id);

  enum class FreeResult { kOk, kBad, kDeferred, kInvalid };
  FreeResult Free(uint64_t p, SourceLoc loc);

  // delayed_free scope management.
  void PushDelayedScope();
  // Processes deferred frees: all outgoing decrements first, then all
  // inbound checks. Returns number of bad frees found.
  int PopDelayedScope();
  int delayed_depth() const { return static_cast<int>(delayed_.size()); }

  // Reference-count maintenance for one pointer write: increment the new
  // target before decrementing the old one (the paper's ordering rule for
  // avoiding transitory zero counts under concurrency).
  void RcWrite(uint64_t old_value, uint64_t new_value);

  // Looks up the live object containing `addr` (not only its base), or null.
  const HeapObject* Find(uint64_t addr) const;
  const HeapObject* FindBase(uint64_t base) const;

  // Sum of shadow counters over the object's chunks.
  int64_t InboundRefs(const HeapObject& obj) const;

  // Masked (counter-width-accurate) refcount of the chunk holding `addr`.
  uint8_t RcOf(uint64_t addr) const { return MaskRc(mem_->Rc(addr)); }

  const HeapStats& stats() const { return stats_; }
  const std::map<std::pair<int, int>, BadFreeSite>& bad_free_sites() const {
    return bad_free_sites_;
  }
  bool ccount() const { return ccount_; }

  // Fraction of attempted frees verified good, in [0,1]; 1.0 when none.
  double GoodFreeRatio() const;

 private:
  // Drops the outgoing references of `obj` per its type layout.
  void DecOutgoing(const HeapObject& obj);
  void FinishFree(HeapObject* obj, SourceLoc loc);
  uint8_t MaskRc(uint8_t raw) const;

  Memory* mem_;
  const TypeLayoutRegistry* layouts_;
  bool ccount_;
  uint8_t rc_mask_;

  uint64_t bump_;
  std::unordered_map<uint64_t, HeapObject> objects_;     // by base address
  std::map<uint64_t, uint64_t> live_ranges_;             // base -> end (for Find)
  std::unordered_map<int64_t, std::vector<uint64_t>> free_bins_;  // size -> bases
  std::vector<std::vector<std::pair<uint64_t, SourceLoc>>> delayed_;
  HeapStats stats_;
  std::map<std::pair<int, int>, BadFreeSite> bad_free_sites_;
};

}  // namespace ivy

#endif  // SRC_VM_HEAP_H_
