// Deterministic cycle cost model.
//
// Table 1 of the paper reports *relative* performance; in this reproduction
// "time" is a deterministic cycle count so every table regenerates exactly.
// Costs are loosely calibrated to a simple in-order core: 1 cycle per ALU op,
// 2 per memory access, a handful per call. The two knobs the paper's
// experiments turn are explicit here: check costs (Deputy, Table 1) and
// reference-count update costs, with the locked (SMP) variant much more
// expensive — the paper measured on a Pentium 4, "which has relatively slow
// locked operations" (E2).
#ifndef SRC_VM_COST_H_
#define SRC_VM_COST_H_

#include <cstdint>

namespace ivy {

struct CostModel {
  int64_t op = 1;              // ALU / const / move / branch
  int64_t load = 2;
  int64_t store = 2;
  int64_t call = 8;            // frame setup + transfer
  int64_t ret = 2;
  int64_t intrinsic = 4;       // builtin dispatch overhead
  // Check costs model the paper's generated x86 sequences: a null check is a
  // test+branch (~3-4 cycles with the load of the guard), a bounds check is
  // two comparisons plus the bounds computation.
  int64_t check = 5;           // null / when / nullterm checks
  int64_t check_bounds = 8;    // two comparisons + bound arithmetic
  int64_t rc_op = 6;           // one refcount update: load+inc+store (UP)
  int64_t rc_op_atomic = 24;   // one *locked* refcount update (SMP, P4-like)
  int64_t kmalloc = 60;
  int64_t kfree = 40;
  int64_t free_scan_per_32b = 1;   // inbound-count scan, two chunks per load
  int64_t copy_per_byte_q = 1;     // quarter-cycles per byte: memcpy/memset
  int64_t zero_per_byte_q = 1;     // quarter-cycles per byte: alloc zeroing
  int64_t user_copy_per_byte_q = 2;
  int64_t irq_op = 3;          // cli/sti/save/restore
  int64_t lock_op = 12;        // spinlock acquire/release (uncontended)
  int64_t atomic_op = 22;      // locked arithmetic
  int64_t context_switch = 50;
  int64_t irq_entry = 40;      // trigger_irq dispatch
  int64_t printk_per_char_q = 2;
};

}  // namespace ivy

#endif  // SRC_VM_COST_H_
