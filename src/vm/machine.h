// The shared kernel-runtime core under both Ivy interpreters. The
// tree-walking Vm (src/vm/vm.h) and the bytecode BcVm (src/bc/bcvm.h) differ
// only in how they fetch and decode instructions; everything observable —
// memory layout, the CCount heap, cycle accounting, IRQ/spinlock state, trap
// kinds and messages, intrinsic semantics — lives here, implemented exactly
// once. That single implementation is what makes the two interpreters'
// VmResult identity a structural property instead of a test-enforced hope.
//
// Derived interpreters provide three hooks: ExecEntry (run a function to
// completion), ExecIrqHandler (the trigger_irq re-entry into the dispatch
// loop), and the function table size for indirect-call validation.
#ifndef SRC_VM_MACHINE_H_
#define SRC_VM_MACHINE_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ccount/layouts.h"
#include "src/ir/ir.h"
#include "src/vm/builtins.h"
#include "src/vm/cost.h"
#include "src/vm/heap.h"
#include "src/vm/memory.h"

namespace ivy {

struct VmConfig {
  bool ccount = false;        // maintain refcounts + verify frees
  bool smp = false;           // refcount updates use locked-op cost
  bool track_locals = false;  // count references from stack slots (footnote 2)
  int rc_width_bits = 8;      // shadow counter width (A3 ablation)
  bool atomic_sleep_check = true;  // might_sleep() traps in atomic context
  uint64_t mem_bytes = 64ull << 20;
  uint64_t stack_bytes = 1ull << 20;
  int64_t stack_limit = 256 << 10;  // kCheckStack budget (bytes)
  int64_t max_steps = 400'000'000;  // deterministic watchdog
  // Opt-in per-opcode execution counts (BcVm only; the tree VM has no
  // opcode stream). Pure observation: profiling on vs off must leave
  // cycles/steps/traps byte-identical — asserted in bcvm_diff_test.
  bool profile = false;
  CostModel cost;
};

struct VmResult {
  bool ok = false;
  int64_t value = 0;
  TrapKind trap = TrapKind::kNone;
  SourceLoc trap_loc;
  std::string trap_msg;
  int64_t cycles = 0;
  int64_t steps = 0;
};

// How each spinlock/mutex has been used; input to LockSafe's IRQ invariant.
struct LockUsage {
  bool in_irq = false;            // acquired inside an interrupt handler
  bool process_irqs_on = false;   // acquired in process context, IRQs enabled
  bool process_irqs_off = false;  // acquired in process context, IRQs disabled
};

// One AST-independent global initializer: what SetupMemory writes before any
// code runs. The tree VM derives these from the AST each construction; the
// bytecode compiler bakes them into the image so a decoded BcModule can run
// without the frontend artifacts.
struct GlobalInit {
  uint64_t addr = 0;
  uint8_t size = 8;        // 1 or 8
  uint8_t is_string = 0;   // value is a string_pool index when set
  int64_t value = 0;
};

// Extracts the AST-derived global initializers from a lowered module — the
// tree VM applies them directly; the bytecode compiler bakes them into the
// image.
std::vector<GlobalInit> GlobalInitsFromModule(const IrModule& m);

class Machine {
 public:
  Machine(const TypeLayoutRegistry* layouts, VmConfig cfg);
  virtual ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Runs `name(args...)` to completion (or trap). The machine keeps all
  // state (memory, heap, cycles) across calls, so a boot function followed
  // by workload functions models one kernel run.
  VmResult Call(const std::string& name, const std::vector<int64_t>& args = {});
  VmResult CallId(int func_id, const std::vector<int64_t>& args = {});

  int64_t cycles() const { return cycles_; }
  int64_t steps() const { return steps_; }
  Heap& heap() { return *heap_; }
  const Heap& heap() const { return *heap_; }
  Memory& memory() { return *mem_; }
  const std::string& log() const { return log_; }
  void ClearLog() { log_.clear(); }
  bool irqs_enabled() const { return irq_enabled_; }
  int64_t context_switches() const { return ctx_switches_; }

  // LockSafe runtime inputs.
  const std::set<std::pair<uint64_t, uint64_t>>& lock_order_edges() const {
    return lock_order_edges_;
  }
  const std::unordered_map<uint64_t, LockUsage>& lock_usage() const { return lock_usage_; }

  // The count of might-sleep checks that executed (dynamic BlockStop events).
  int64_t might_sleep_checks() const { return might_sleep_checks_; }

 protected:
  struct Trap {
    TrapKind kind;
    SourceLoc loc;
    std::string msg;
  };

  // Runs func_id(args...) and returns its value; throws Trap. Implemented by
  // each interpreter's dispatch strategy.
  virtual int64_t ExecEntry(int func_id, const std::vector<int64_t>& args) = 0;

  // trigger_irq re-entry: run the handler nested inside the current run.
  // DoIntrinsic has already flipped irq_enabled_/in_irq_ around the call.
  virtual int64_t ExecIrqHandler(int func_id, int64_t arg) = 0;

  // Lays out rodata/stack/heap and applies global initializers. `globals`
  // must outlive the machine (PtrOffsetsFor consults it on every typed
  // memory write).
  void SetupMemory(uint64_t globals_end, const std::vector<std::string>& string_pool,
                   const std::vector<GlobalSlot>* globals,
                   const std::vector<GlobalInit>& inits);

  void ChargeRc(int64_t n);
  void ValidAccess(uint64_t addr, uint64_t bytes, SourceLoc loc);
  std::string ReadCString(uint64_t addr, size_t cap = 4096);
  void DoStorePtr(uint64_t addr, int64_t value, SourceLoc loc);
  // The post-validation body of DoStorePtr: the bytecode VM checks validity
  // inline (so the common case never materializes a SourceLoc) and calls
  // this directly.
  void DoStorePtrUnchecked(uint64_t addr, int64_t value);
  const std::vector<int64_t>* PtrOffsetsFor(uint64_t addr, uint64_t n, uint64_t* obj_base);
  void TypedMemWrite(uint64_t dst, uint64_t n);   // pre-write RC maintenance
  void TypedMemReinc(uint64_t dst, uint64_t n);   // post-copy RC maintenance
  void CheckMightSleep(SourceLoc loc, const char* what);
  void AcquireLock(uint64_t lock_addr, bool is_spin, SourceLoc loc);
  void ReleaseLock(uint64_t lock_addr, bool is_spin, SourceLoc loc);

  // One builtin call. `args` is read before any nested execution, so a
  // caller's scratch buffer may be reused by a nested trigger_irq run.
  int64_t DoIntrinsic(Builtin b, SourceLoc loc, int32_t alloc_type_id,
                      const int64_t* args, size_t nargs);

  const TypeLayoutRegistry* layouts_;
  VmConfig cfg_;
  const std::vector<GlobalSlot>* globals_ = nullptr;
  size_t num_funcs_ = 0;
  std::unique_ptr<Memory> mem_;
  std::unique_ptr<Heap> heap_;
  std::vector<uint64_t> string_addrs_;
  std::vector<uint8_t> user_mem_;

  int64_t cycles_ = 0;
  int64_t steps_ = 0;
  std::string log_;
  bool irq_enabled_ = true;
  int in_irq_ = 0;
  int preempt_depth_ = 0;
  uint64_t stack_top_ = 0;
  int64_t ctx_switches_ = 0;
  int64_t might_sleep_checks_ = 0;
  std::vector<uint64_t> held_locks_;  // spinlocks + mutexes, in acquire order
  std::set<uint64_t> held_set_;
  std::set<std::pair<uint64_t, uint64_t>> lock_order_edges_;
  std::unordered_map<uint64_t, LockUsage> lock_usage_;
  std::unordered_map<std::string, int> func_ids_;
  // Scratch buffer of pointer offsets for globals (TypedMemWrite).
  std::vector<int64_t> scratch_offsets_;
};

}  // namespace ivy

#endif  // SRC_VM_MACHINE_H_
