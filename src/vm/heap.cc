#include "src/vm/heap.h"

#include <algorithm>
#include <set>

namespace ivy {

Heap::Heap(Memory* mem, const TypeLayoutRegistry* layouts, bool ccount_enabled,
           int rc_width_bits)
    : mem_(mem),
      layouts_(layouts),
      ccount_(ccount_enabled),
      rc_mask_(rc_width_bits >= 8 ? 0xff
                                  : static_cast<uint8_t>((1u << rc_width_bits) - 1)),
      bump_(mem->heap_base) {}

uint8_t Heap::MaskRc(uint8_t raw) const { return raw & rc_mask_; }

uint64_t Heap::Alloc(int64_t size, int32_t type_id) {
  if (size <= 0) {
    size = 1;
  }
  int64_t rounded = (size + 15) / 16 * 16;
  uint64_t base = 0;
  auto bin = free_bins_.find(rounded);
  if (bin != free_bins_.end() && !bin->second.empty()) {
    base = bin->second.back();
    bin->second.pop_back();
  } else {
    if (bump_ + static_cast<uint64_t>(rounded) > mem_->size()) {
      return 0;  // OOM
    }
    base = bump_;
    bump_ += static_cast<uint64_t>(rounded);
  }
  // Zero the storage: mandatory for CCount so that the first pointer write
  // into the object does not decrement a random chunk's counter.
  mem_->ZeroRange(base, static_cast<uint64_t>(rounded));
  HeapObject obj;
  obj.base = base;
  obj.size = rounded;
  obj.type_id = type_id;
  obj.state = HeapObject::State::kLive;
  objects_[base] = obj;
  live_ranges_[base] = base + static_cast<uint64_t>(rounded);
  ++stats_.allocs;
  stats_.bytes_live += rounded;
  stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_live);
  return base;
}

void Heap::RcWrite(uint64_t old_value, uint64_t new_value) {
  if (!ccount_) {
    return;
  }
  // Increment-before-decrement, per the paper, so a chunk referenced by both
  // values never transits through zero.
  if (mem_->Countable(new_value)) {
    mem_->RcSet(new_value, MaskRc(static_cast<uint8_t>(mem_->Rc(new_value) + 1)));
    ++stats_.rc_increments;
  }
  if (mem_->Countable(old_value)) {
    mem_->RcSet(old_value, MaskRc(static_cast<uint8_t>(mem_->Rc(old_value) - 1)));
    ++stats_.rc_decrements;
  }
}

const HeapObject* Heap::Find(uint64_t addr) const {
  auto it = live_ranges_.upper_bound(addr);
  if (it == live_ranges_.begin()) {
    return nullptr;
  }
  --it;
  if (addr >= it->second) {
    return nullptr;
  }
  auto obj = objects_.find(it->first);
  return obj == objects_.end() ? nullptr : &obj->second;
}

const HeapObject* Heap::FindBase(uint64_t base) const {
  auto it = objects_.find(base);
  return it == objects_.end() ? nullptr : &it->second;
}

int64_t Heap::InboundRefs(const HeapObject& obj) const {
  int64_t sum = 0;
  for (uint64_t a = obj.base; a < obj.base + static_cast<uint64_t>(obj.size); a += 16) {
    sum += MaskRc(mem_->Rc(a));
  }
  return sum;
}

void Heap::DecOutgoing(const HeapObject& obj) {
  if (!ccount_) {
    return;
  }
  auto drop_slot = [&](uint64_t addr) {
    int64_t v = mem_->Read(addr, 8);
    uint64_t uv = static_cast<uint64_t>(v);
    if (mem_->Countable(uv)) {
      mem_->RcSet(uv, MaskRc(static_cast<uint8_t>(mem_->Rc(uv) - 1)));
      ++stats_.rc_decrements;
    }
    // Zero the slot so a later (erroneous) rewrite or double scan cannot
    // decrement the same target twice.
    mem_->Write(addr, 0, 8);
  };
  if (obj.type_id == kTypeIdAllPtr) {
    for (int64_t off = 0; off + 8 <= obj.size; off += 8) {
      drop_slot(obj.base + static_cast<uint64_t>(off));
    }
    return;
  }
  if (obj.type_id < 0) {
    return;  // kTypeIdNoPtr / kTypeIdUnknown: nothing we can scan
  }
  const TypeLayout* layout = layouts_->Get(obj.type_id);
  if (layout == nullptr || layout->stride <= 0) {
    return;
  }
  for (int64_t rec = 0; rec + layout->stride <= obj.size; rec += layout->stride) {
    for (int64_t off : layout->ptr_offsets) {
      drop_slot(obj.base + static_cast<uint64_t>(rec + off));
    }
  }
}

void Heap::FinishFree(HeapObject* obj, SourceLoc loc) {
  int64_t inbound = InboundRefs(*obj);
  ++stats_.frees_attempted;
  if (inbound != 0) {
    // Bad free: dangling references remain. Log and leak (soundness).
    obj->state = HeapObject::State::kLeaked;
    live_ranges_.erase(obj->base);
    ++stats_.frees_bad;
    auto key = std::make_pair(loc.file, loc.line);
    BadFreeSite& site = bad_free_sites_[key];
    site.loc = loc;
    ++site.count;
    site.inbound_refs = inbound;
    return;
  }
  obj->state = HeapObject::State::kFreed;
  live_ranges_.erase(obj->base);
  stats_.bytes_live -= obj->size;
  free_bins_[obj->size].push_back(obj->base);
  ++stats_.frees_good;
}

Heap::FreeResult Heap::Free(uint64_t p, SourceLoc loc) {
  auto it = objects_.find(p);
  if (it == objects_.end() || it->second.state != HeapObject::State::kLive) {
    ++stats_.frees_attempted;
    ++stats_.frees_bad;
    auto key = std::make_pair(loc.file, loc.line);
    BadFreeSite& site = bad_free_sites_[key];
    site.loc = loc;
    ++site.count;
    return FreeResult::kInvalid;
  }
  if (!delayed_.empty()) {
    delayed_.back().push_back({p, loc});
    ++stats_.frees_deferred;
    return FreeResult::kDeferred;
  }
  DecOutgoing(it->second);
  int64_t before_bad = stats_.frees_bad;
  FinishFree(&it->second, loc);
  return stats_.frees_bad == before_bad ? FreeResult::kOk : FreeResult::kBad;
}

void Heap::PushDelayedScope() { delayed_.emplace_back(); }

int Heap::PopDelayedScope() {
  if (delayed_.empty()) {
    return 0;
  }
  std::vector<std::pair<uint64_t, SourceLoc>> pending = std::move(delayed_.back());
  delayed_.pop_back();
  // Phase 1: drop every queued object's outgoing references, so mutually
  // referencing (cyclic) structures reach zero before any check runs.
  std::set<uint64_t> seen;
  std::vector<std::pair<HeapObject*, SourceLoc>> unique;
  for (auto& [base, loc] : pending) {
    if (!seen.insert(base).second) {
      continue;  // duplicate free in the same scope: counted once
    }
    auto it = objects_.find(base);
    if (it == objects_.end() || it->second.state != HeapObject::State::kLive) {
      ++stats_.frees_attempted;
      ++stats_.frees_bad;
      continue;
    }
    DecOutgoing(it->second);
    unique.push_back({&it->second, loc});
  }
  // Phase 2: check and release.
  int bad = 0;
  for (auto& [obj, loc] : unique) {
    int64_t before = stats_.frees_bad;
    FinishFree(obj, loc);
    if (stats_.frees_bad != before) {
      ++bad;
    }
  }
  return bad;
}

double Heap::GoodFreeRatio() const {
  if (stats_.frees_attempted == 0) {
    return 1.0;
  }
  return static_cast<double>(stats_.frees_good) /
         static_cast<double>(stats_.frees_attempted);
}

}  // namespace ivy
