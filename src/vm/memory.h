// Flat simulated physical memory plus the CCount reference-count shadow.
//
// Layout (addresses are offsets into one byte array; 0 is the null page):
//   [0, 4096)                      null guard page -- any access faults
//   [4096, globals_end)            globals + string literals ("rodata")
//   [stack_base, stack_base+len)   the kernel stack region (VM call frames)
//   [heap_base, mem_size)          kmalloc heap
//
// The shadow keeps one 8-bit counter per 16-byte chunk, exactly the paper's
// scheme (6.25% space overhead; counters wrap mod 256, so a bad free of an
// object with k*256 inbound references is missed -- reproduced and measured
// by the A3 ablation).
#ifndef SRC_VM_MEMORY_H_
#define SRC_VM_MEMORY_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace ivy {

// Function pointers live outside data memory in their own id space.
constexpr uint64_t kFuncPtrBase = 1ull << 48;

class Memory {
 public:
  explicit Memory(uint64_t size) : mem_(size, 0), rc_(size / 16 + 1, 0), size_(size) {}

  uint64_t size() const { return size_; }
  uint8_t* data() { return mem_.data(); }
  const uint8_t* data() const { return mem_.data(); }

  // True if [addr, addr+bytes) is a legal data access.
  bool Valid(uint64_t addr, uint64_t bytes) const {
    return addr >= 4096 && bytes <= size_ && addr <= size_ - bytes;
  }

  // Unchecked typed accessors (caller validates). 1-byte loads zero-extend.
  int64_t Read(uint64_t addr, int size) const {
    if (size == 1) {
      return mem_[addr];
    }
    int64_t v;
    std::memcpy(&v, &mem_[addr], 8);
    return v;
  }

  void Write(uint64_t addr, int64_t value, int size) {
    if (size == 1) {
      mem_[addr] = static_cast<uint8_t>(value & 0xff);
    } else {
      std::memcpy(&mem_[addr], &value, 8);
    }
  }

  // Reference-count shadow for the 16-byte chunk containing `addr`.
  uint8_t Rc(uint64_t addr) const { return rc_[addr / 16]; }
  void RcSet(uint64_t addr, uint8_t v) { rc_[addr / 16] = v; }
  void RcInc(uint64_t addr) { ++rc_[addr / 16]; }
  void RcDec(uint64_t addr) { --rc_[addr / 16]; }

  // True if `value` is a plausible data pointer whose target chunk is
  // counted (excludes null and the function-pointer id space).
  bool Countable(uint64_t value) const { return value >= 4096 && value < size_; }

  void ZeroRange(uint64_t addr, uint64_t bytes) { std::memset(&mem_[addr], 0, bytes); }

  // Region registration (set once by the VM after layout).
  uint64_t globals_end = 4096;
  uint64_t stack_base = 0;
  uint64_t stack_size = 0;
  uint64_t heap_base = 0;

  bool InStack(uint64_t addr) const {
    return addr >= stack_base && addr < stack_base + stack_size;
  }

 private:
  std::vector<uint8_t> mem_;
  std::vector<uint8_t> rc_;
  uint64_t size_;
};

}  // namespace ivy

#endif  // SRC_VM_MEMORY_H_
