#include "src/vm/builtins.h"

#include <unordered_map>

namespace ivy {

namespace {

struct BuiltinInfo {
  const char* name;
  Builtin id;
  bool blocking;
  int blocking_if_param;
};

constexpr BuiltinInfo kBuiltins[] = {
    {"kmalloc", Builtin::kKmalloc, false, 1},
    {"kfree", Builtin::kKfree, false, -1},
    {"memset", Builtin::kMemset, false, -1},
    {"memcpy", Builtin::kMemcpy, false, -1},
    {"printk", Builtin::kPrintk, false, -1},
    {"panic", Builtin::kPanic, false, -1},
    {"__assert", Builtin::kAssert, false, -1},
    {"local_irq_save", Builtin::kLocalIrqSave, false, -1},
    {"local_irq_restore", Builtin::kLocalIrqRestore, false, -1},
    {"local_irq_disable", Builtin::kLocalIrqDisable, false, -1},
    {"local_irq_enable", Builtin::kLocalIrqEnable, false, -1},
    {"irqs_disabled", Builtin::kIrqsDisabled, false, -1},
    {"spin_lock", Builtin::kSpinLock, false, -1},
    {"spin_unlock", Builtin::kSpinUnlock, false, -1},
    {"spin_lock_irqsave", Builtin::kSpinLockIrqsave, false, -1},
    {"spin_unlock_irqrestore", Builtin::kSpinUnlockIrqrestore, false, -1},
    {"mutex_lock", Builtin::kMutexLock, true, -1},
    {"mutex_unlock", Builtin::kMutexUnlock, false, -1},
    {"might_sleep", Builtin::kMightSleep, true, -1},
    {"schedule", Builtin::kSchedule, true, -1},
    {"msleep", Builtin::kMsleep, true, -1},
    {"udelay", Builtin::kUdelay, false, -1},
    {"wait_event", Builtin::kWaitEvent, true, -1},
    {"wake_up", Builtin::kWakeUp, false, -1},
    {"wait_for_completion", Builtin::kWaitForCompletion, true, -1},
    {"complete", Builtin::kComplete, false, -1},
    {"copy_to_user", Builtin::kCopyToUser, true, -1},
    {"copy_from_user", Builtin::kCopyFromUser, true, -1},
    {"assert_nonatomic", Builtin::kAssertNonatomic, false, -1},
    {"trigger_irq", Builtin::kTriggerIrq, false, -1},
    {"atomic_inc", Builtin::kAtomicInc, false, -1},
    {"atomic_dec_and_test", Builtin::kAtomicDecAndTest, false, -1},
    {"__cycles", Builtin::kCycles, false, -1},
    {"__rc_of", Builtin::kRcOf, false, -1},
    {"__good_frees", Builtin::kGoodFrees, false, -1},
    {"__bad_frees", Builtin::kBadFrees, false, -1},
    {"context_switch", Builtin::kContextSwitch, false, -1},
};

static_assert(sizeof(kBuiltins) / sizeof(kBuiltins[0]) == static_cast<size_t>(kNumBuiltins),
              "builtin table out of sync with enum");

}  // namespace

int BuiltinIdForName(const std::string& name) {
  static const auto* kMap = [] {
    auto* m = new std::unordered_map<std::string, int>();
    for (const BuiltinInfo& b : kBuiltins) {
      (*m)[b.name] = static_cast<int>(b.id);
    }
    return m;
  }();
  auto it = kMap->find(name);
  return it == kMap->end() ? -1 : it->second;
}

const char* BuiltinName(Builtin b) {
  int idx = static_cast<int>(b);
  if (idx < 0 || idx >= kNumBuiltins) {
    return "?";
  }
  return kBuiltins[idx].name;
}

bool BuiltinIsBlocking(Builtin b) {
  int idx = static_cast<int>(b);
  if (idx < 0 || idx >= kNumBuiltins) {
    return false;
  }
  return kBuiltins[idx].blocking;
}

int BuiltinBlockingIfParam(Builtin b) {
  int idx = static_cast<int>(b);
  if (idx < 0 || idx >= kNumBuiltins) {
    return -1;
  }
  return kBuiltins[idx].blocking_if_param;
}

}  // namespace ivy
