#include "src/vm/vm.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace ivy {

namespace {
constexpr int64_t kGfpWait = 1;  // GFP_WAIT bit (prelude's enum value)
}

Vm::Vm(const IrModule* module, const TypeLayoutRegistry* layouts, VmConfig cfg)
    : module_(module), layouts_(layouts), cfg_(cfg) {
  SetupMemory();
  for (const IrFunc& f : module_->funcs) {
    if (f.decl != nullptr) {
      func_ids_[f.decl->name] = f.decl->func_id;
    }
  }
}

void Vm::SetupMemory() {
  mem_ = std::make_unique<Memory>(cfg_.mem_bytes);
  // Rodata: string literals after the globals.
  uint64_t addr = (module_->globals_end + 15) / 16 * 16;
  string_addrs_.clear();
  for (const std::string& s : module_->string_pool) {
    string_addrs_.push_back(addr);
    for (size_t i = 0; i < s.size(); ++i) {
      mem_->Write(addr + i, static_cast<unsigned char>(s[i]), 1);
    }
    mem_->Write(addr + s.size(), 0, 1);
    addr = (addr + s.size() + 1 + 7) / 8 * 8;
  }
  mem_->globals_end = addr;
  mem_->stack_base = (addr + 4095) / 4096 * 4096;
  mem_->stack_size = cfg_.stack_bytes;
  mem_->heap_base = mem_->stack_base + mem_->stack_size;
  stack_top_ = mem_->stack_base;
  heap_ = std::make_unique<Heap>(mem_.get(), layouts_, cfg_.ccount, cfg_.rc_width_bits);
  // Global initializers (constants and string literals).
  for (const GlobalSlot& g : module_->globals) {
    const Expr* init = g.decl != nullptr ? g.decl->init : nullptr;
    if (init == nullptr) {
      continue;
    }
    if (init->is_const) {
      mem_->Write(g.addr, init->int_val, g.decl->type->IsChar() ? 1 : 8);
    } else if (init->kind == ExprKind::kStrLit) {
      // Find the string in the pool (lowering interned it when the global
      // was lowered; globals are set up before any code runs, so search).
      for (size_t i = 0; i < module_->string_pool.size(); ++i) {
        if (module_->string_pool[i] == init->str_val) {
          mem_->Write(g.addr, static_cast<int64_t>(string_addrs_[i]), 8);
          break;
        }
      }
    }
  }
}

void Vm::ChargeRc(int64_t n) {
  cycles_ += n * (cfg_.smp ? cfg_.cost.rc_op_atomic : cfg_.cost.rc_op);
}

void Vm::ValidAccess(uint64_t addr, uint64_t bytes, SourceLoc loc) {
  if (!mem_->Valid(addr, bytes)) {
    throw Trap{addr < 4096 ? TrapKind::kNullDeref : TrapKind::kMemFault, loc,
               "access at address " + std::to_string(addr)};
  }
}

std::string Vm::ReadCString(uint64_t addr, size_t cap) {
  std::string out;
  while (out.size() < cap && mem_->Valid(addr, 1)) {
    char c = static_cast<char>(mem_->Read(addr, 1));
    if (c == 0) {
      break;
    }
    out.push_back(c);
    ++addr;
  }
  return out;
}

void Vm::DoStorePtr(uint64_t addr, int64_t value, SourceLoc loc) {
  ValidAccess(addr, 8, loc);
  if (heap_->ccount()) {
    bool tracked = cfg_.track_locals || !mem_->InStack(addr);
    if (tracked) {
      int64_t old = mem_->Read(addr, 8);
      heap_->RcWrite(static_cast<uint64_t>(old), static_cast<uint64_t>(value));
      ChargeRc(2);
    }
  }
  mem_->Write(addr, value, 8);
  cycles_ += cfg_.cost.store;
}

const std::vector<int64_t>* Vm::PtrOffsetsFor(uint64_t addr, uint64_t /*n*/, uint64_t* obj_base) {
  // Heap object?
  const HeapObject* obj = heap_->Find(addr);
  if (obj != nullptr) {
    *obj_base = obj->base;
    if (obj->type_id >= 0) {
      const TypeLayout* layout = layouts_->Get(obj->type_id);
      if (layout != nullptr && layout->stride > 0) {
        // Expand the per-record offsets across the object into scratch.
        scratch_offsets_.clear();
        for (int64_t rec = 0; rec + layout->stride <= obj->size; rec += layout->stride) {
          for (int64_t off : layout->ptr_offsets) {
            scratch_offsets_.push_back(rec + off);
          }
        }
        return &scratch_offsets_;
      }
    }
    if (obj->type_id == kTypeIdAllPtr) {
      scratch_offsets_.clear();
      for (int64_t off = 0; off + 8 <= obj->size; off += 8) {
        scratch_offsets_.push_back(off);
      }
      return &scratch_offsets_;
    }
    scratch_offsets_.clear();
    return &scratch_offsets_;  // no pointers known
  }
  // Global?
  for (const GlobalSlot& g : module_->globals) {
    if (addr >= g.addr && addr < g.addr + static_cast<uint64_t>(g.size)) {
      *obj_base = g.addr;
      return &g.ptr_offsets;
    }
  }
  *obj_base = addr;
  scratch_offsets_.clear();
  return &scratch_offsets_;
}

void Vm::TypedMemWrite(uint64_t dst, uint64_t n) {
  if (!heap_->ccount()) {
    return;
  }
  if (mem_->InStack(dst) && !cfg_.track_locals) {
    return;
  }
  uint64_t base = 0;
  const std::vector<int64_t>* offsets = PtrOffsetsFor(dst, n, &base);
  for (int64_t off : *offsets) {
    uint64_t slot = base + static_cast<uint64_t>(off);
    if (slot >= dst && slot + 8 <= dst + n) {
      int64_t old = mem_->Read(slot, 8);
      if (mem_->Countable(static_cast<uint64_t>(old))) {
        heap_->RcWrite(static_cast<uint64_t>(old), 0);
        ChargeRc(1);
      }
    }
  }
}

void Vm::TypedMemReinc(uint64_t dst, uint64_t n) {
  if (!heap_->ccount()) {
    return;
  }
  if (mem_->InStack(dst) && !cfg_.track_locals) {
    return;
  }
  uint64_t base = 0;
  const std::vector<int64_t>* offsets = PtrOffsetsFor(dst, n, &base);
  for (int64_t off : *offsets) {
    uint64_t slot = base + static_cast<uint64_t>(off);
    if (slot >= dst && slot + 8 <= dst + n) {
      int64_t v = mem_->Read(slot, 8);
      if (mem_->Countable(static_cast<uint64_t>(v))) {
        heap_->RcWrite(0, static_cast<uint64_t>(v));
        ChargeRc(1);
      }
    }
  }
}

void Vm::CheckMightSleep(SourceLoc loc, const char* what) {
  ++might_sleep_checks_;
  if (!cfg_.atomic_sleep_check) {
    return;
  }
  if (!irq_enabled_ || in_irq_ > 0 || preempt_depth_ > 0) {
    throw Trap{TrapKind::kMightSleepAtomic, loc,
               std::string(what) + " called in atomic context (irqs " +
                   (irq_enabled_ ? "on" : "off") + ", in_irq=" + std::to_string(in_irq_) +
                   ", preempt=" + std::to_string(preempt_depth_) + ")"};
  }
}

void Vm::AcquireLock(uint64_t lock_addr, bool is_spin, SourceLoc loc) {
  if (held_set_.count(lock_addr) != 0) {
    throw Trap{TrapKind::kDeadlock, loc,
               "recursive acquisition of lock @" + std::to_string(lock_addr)};
  }
  for (uint64_t held : held_locks_) {
    lock_order_edges_.insert({held, lock_addr});
  }
  held_locks_.push_back(lock_addr);
  held_set_.insert(lock_addr);
  LockUsage& usage = lock_usage_[lock_addr];
  if (in_irq_ > 0) {
    usage.in_irq = true;
  } else if (irq_enabled_) {
    usage.process_irqs_on = true;
  } else {
    usage.process_irqs_off = true;
  }
  ValidAccess(lock_addr, 8, loc);
  mem_->Write(lock_addr, 1, 8);
  if (is_spin) {
    ++preempt_depth_;
  }
  cycles_ += cfg_.cost.lock_op;
}

void Vm::ReleaseLock(uint64_t lock_addr, bool is_spin, SourceLoc loc) {
  auto it = std::find(held_locks_.rbegin(), held_locks_.rend(), lock_addr);
  if (it == held_locks_.rend()) {
    throw Trap{TrapKind::kAssertFail, loc,
               "release of lock @" + std::to_string(lock_addr) + " that is not held"};
  }
  held_locks_.erase(std::next(it).base());
  held_set_.erase(lock_addr);
  ValidAccess(lock_addr, 8, loc);
  mem_->Write(lock_addr, 0, 8);
  if (is_spin) {
    --preempt_depth_;
  }
  cycles_ += cfg_.cost.lock_op;
}

VmResult Vm::Call(const std::string& name, const std::vector<int64_t>& args) {
  auto it = func_ids_.find(name);
  if (it == func_ids_.end()) {
    VmResult r;
    r.trap = TrapKind::kBadIndirectCall;
    r.trap_msg = "no such function: " + name;
    return r;
  }
  return CallId(it->second, args);
}

VmResult Vm::CallId(int func_id, const std::vector<int64_t>& args) {
  VmResult r;
  try {
    r.value = ExecFunction(func_id, args);
    r.ok = true;
  } catch (const Trap& t) {
    r.ok = false;
    r.trap = t.kind;
    r.trap_loc = t.loc;
    r.trap_msg = t.msg;
  }
  r.cycles = cycles_;
  r.steps = steps_;
  return r;
}

void Vm::PushFrame(std::vector<Frame>* frames, int func_id, const std::vector<int64_t>& args,
                   int ret_dst) {
  if (func_id < 0 || static_cast<size_t>(func_id) >= module_->funcs.size()) {
    throw Trap{TrapKind::kBadIndirectCall, SourceLoc{}, "bad function id"};
  }
  const IrFunc& fn = module_->funcs[static_cast<size_t>(func_id)];
  if (fn.blocks.empty()) {
    throw Trap{TrapKind::kBadIndirectCall, fn.decl != nullptr ? fn.decl->loc : SourceLoc{},
               "call to undefined function '" +
                   (fn.decl != nullptr ? fn.decl->name : "?") + "'"};
  }
  if (stack_top_ + static_cast<uint64_t>(fn.frame_size) >
      mem_->stack_base + mem_->stack_size) {
    throw Trap{TrapKind::kStackOverflow, fn.decl->loc, "kernel stack exhausted"};
  }
  Frame f;
  f.fn = &fn;
  f.base = stack_top_;
  f.ret_dst = ret_dst;
  f.delayed_at_entry = heap_->delayed_depth();
  stack_top_ += static_cast<uint64_t>(fn.frame_size);
  if (cfg_.track_locals && fn.frame_size > 0) {
    // Zero the frame so pointer-slot tracking starts from a clean state.
    mem_->ZeroRange(f.base, static_cast<uint64_t>(fn.frame_size));
    cycles_ += fn.frame_size * cfg_.cost.zero_per_byte_q / 4;
  }
  f.regs.assign(static_cast<size_t>(fn.num_regs), 0);
  for (size_t i = 0; i < fn.param_offsets.size() && i < args.size(); ++i) {
    uint64_t slot = f.base + static_cast<uint64_t>(fn.param_offsets[i]);
    if (cfg_.track_locals && heap_->ccount() && fn.param_sizes[i] == 8) {
      // Pointer-typed parameter slots participate in counting.
      bool is_ptr = false;
      for (int64_t off : fn.ptr_slots) {
        if (off == fn.param_offsets[i]) {
          is_ptr = true;
          break;
        }
      }
      if (is_ptr) {
        heap_->RcWrite(0, static_cast<uint64_t>(args[i]));
        ChargeRc(1);
      }
    }
    mem_->Write(slot, args[i], fn.param_sizes[i]);
  }
  cycles_ += cfg_.cost.call;
  frames->push_back(std::move(f));
}

void Vm::PopFrameStack(const Frame& f) {
  if (cfg_.track_locals && heap_->ccount()) {
    // Drop references held by pointer slots in this frame.
    for (int64_t off : f.fn->ptr_slots) {
      int64_t v = mem_->Read(f.base + static_cast<uint64_t>(off), 8);
      if (mem_->Countable(static_cast<uint64_t>(v))) {
        heap_->RcWrite(static_cast<uint64_t>(v), 0);  // dec only
        ChargeRc(1);
      }
    }
  }
  stack_top_ = f.base;
  cycles_ += cfg_.cost.ret;
}

int64_t Vm::ExecFunction(int func_id, const std::vector<int64_t>& args) {
  std::vector<Frame> frames;
  PushFrame(&frames, func_id, args, -1);
  int64_t result = 0;
  while (!frames.empty()) {
    Frame& f = frames.back();
    const std::vector<Instr>& code = f.fn->blocks[static_cast<size_t>(f.block)].instrs;
    if (f.ip >= code.size()) {
      // Block fell off the end (empty continuation block): implicit return.
      const Frame done = std::move(frames.back());
      frames.pop_back();
      PopFrameStack(done);
      if (!frames.empty() && done.ret_dst >= 0) {
        frames.back().regs[static_cast<size_t>(done.ret_dst)] = 0;
      }
      result = 0;
      continue;
    }
    const Instr& in = code[f.ip++];
    if (++steps_ > cfg_.max_steps) {
      throw Trap{TrapKind::kTimeout, in.loc, "instruction budget exceeded"};
    }
    auto reg = [&f](int r) -> int64_t { return f.regs[static_cast<size_t>(r)]; };
    switch (in.op) {
      case Op::kConst:
        f.regs[static_cast<size_t>(in.dst)] = in.imm;
        cycles_ += cfg_.cost.op;
        break;
      case Op::kMove:
        f.regs[static_cast<size_t>(in.dst)] = reg(in.a);
        cycles_ += cfg_.cost.op;
        break;
      case Op::kUn: {
        int64_t a = reg(in.a);
        int64_t v = 0;
        switch (in.un) {
          case UnOp::kNeg:
            v = -a;
            break;
          case UnOp::kLogNot:
            v = a == 0 ? 1 : 0;
            break;
          case UnOp::kBitNot:
            v = ~a;
            break;
        }
        f.regs[static_cast<size_t>(in.dst)] = v;
        cycles_ += cfg_.cost.op;
        break;
      }
      case Op::kBin: {
        int64_t a = reg(in.a);
        int64_t b = reg(in.b);
        int64_t v = 0;
        switch (in.bin) {
          case BinOp::kAdd:
            v = a + b;
            break;
          case BinOp::kSub:
            v = a - b;
            break;
          case BinOp::kMul:
            v = a * b;
            break;
          case BinOp::kDiv:
            if (b == 0) {
              throw Trap{TrapKind::kDivByZero, in.loc, "division by zero"};
            }
            v = a / b;
            break;
          case BinOp::kRem:
            if (b == 0) {
              throw Trap{TrapKind::kDivByZero, in.loc, "remainder by zero"};
            }
            v = a % b;
            break;
          case BinOp::kShl:
            v = a << (b & 63);
            break;
          case BinOp::kShr:
            v = a >> (b & 63);
            break;
          case BinOp::kLt:
            v = a < b;
            break;
          case BinOp::kGt:
            v = a > b;
            break;
          case BinOp::kLe:
            v = a <= b;
            break;
          case BinOp::kGe:
            v = a >= b;
            break;
          case BinOp::kEq:
            v = a == b;
            break;
          case BinOp::kNe:
            v = a != b;
            break;
          case BinOp::kBitAnd:
            v = a & b;
            break;
          case BinOp::kBitOr:
            v = a | b;
            break;
          case BinOp::kBitXor:
            v = a ^ b;
            break;
          case BinOp::kLogAnd:
            v = (a != 0 && b != 0) ? 1 : 0;
            break;
          case BinOp::kLogOr:
            v = (a != 0 || b != 0) ? 1 : 0;
            break;
          case BinOp::kNone:
            break;
        }
        f.regs[static_cast<size_t>(in.dst)] = v;
        cycles_ += cfg_.cost.op;
        break;
      }
      case Op::kLoad: {
        uint64_t addr = static_cast<uint64_t>(reg(in.a));
        ValidAccess(addr, in.size, in.loc);
        f.regs[static_cast<size_t>(in.dst)] = mem_->Read(addr, in.size);
        cycles_ += cfg_.cost.load;
        break;
      }
      case Op::kStore: {
        uint64_t addr = static_cast<uint64_t>(reg(in.a));
        ValidAccess(addr, in.size, in.loc);
        mem_->Write(addr, reg(in.b), in.size);
        cycles_ += cfg_.cost.store;
        break;
      }
      case Op::kStorePtr:
        DoStorePtr(static_cast<uint64_t>(reg(in.a)), reg(in.b), in.loc);
        break;
      case Op::kFrameAddr:
        f.regs[static_cast<size_t>(in.dst)] = static_cast<int64_t>(f.base) + in.imm;
        cycles_ += cfg_.cost.op;
        break;
      case Op::kGlobalAddr:
        f.regs[static_cast<size_t>(in.dst)] = in.imm;
        cycles_ += cfg_.cost.op;
        break;
      case Op::kFuncConst:
        f.regs[static_cast<size_t>(in.dst)] =
            static_cast<int64_t>(kFuncPtrBase + static_cast<uint64_t>(in.imm));
        cycles_ += cfg_.cost.op;
        break;
      case Op::kStrConst:
        f.regs[static_cast<size_t>(in.dst)] =
            static_cast<int64_t>(string_addrs_[static_cast<size_t>(in.imm)]);
        cycles_ += cfg_.cost.op;
        break;
      case Op::kCall: {
        std::vector<int64_t> call_args;
        call_args.reserve(in.args.size());
        for (int r : in.args) {
          call_args.push_back(reg(r));
        }
        PushFrame(&frames, static_cast<int>(in.imm), call_args, in.dst);
        break;
      }
      case Op::kCallInd: {
        uint64_t fp = static_cast<uint64_t>(reg(in.a));
        if (fp < kFuncPtrBase || fp - kFuncPtrBase >= module_->funcs.size()) {
          throw Trap{TrapKind::kBadIndirectCall, in.loc,
                     "indirect call through invalid function pointer"};
        }
        std::vector<int64_t> call_args;
        call_args.reserve(in.args.size());
        for (int r : in.args) {
          call_args.push_back(reg(r));
        }
        PushFrame(&frames, static_cast<int>(fp - kFuncPtrBase), call_args, in.dst);
        break;
      }
      case Op::kIntrinsic: {
        std::vector<int64_t> call_args;
        call_args.reserve(in.args.size());
        for (int r : in.args) {
          call_args.push_back(reg(r));
        }
        int64_t v = DoIntrinsic(in, call_args);
        if (in.dst >= 0) {
          f.regs[static_cast<size_t>(in.dst)] = v;
        }
        cycles_ += cfg_.cost.intrinsic;
        break;
      }
      case Op::kRet: {
        // Unwind any delayed_free scopes this function opened but left open
        // via an early return.
        while (heap_->delayed_depth() > f.delayed_at_entry) {
          heap_->PopDelayedScope();
        }
        int64_t value = in.a >= 0 ? reg(in.a) : 0;
        const Frame done = std::move(frames.back());
        frames.pop_back();
        PopFrameStack(done);
        if (frames.empty()) {
          return value;
        }
        if (done.ret_dst >= 0) {
          frames.back().regs[static_cast<size_t>(done.ret_dst)] = value;
        }
        result = value;
        break;
      }
      case Op::kJump:
        f.block = static_cast<int>(in.imm);
        f.ip = 0;
        cycles_ += cfg_.cost.op;
        break;
      case Op::kBranch:
        f.block = reg(in.a) != 0 ? static_cast<int>(in.imm) : static_cast<int>(in.imm2);
        f.ip = 0;
        cycles_ += cfg_.cost.op;
        break;
      case Op::kCheckNonNull:
        if (reg(in.a) == 0) {
          throw Trap{TrapKind::kNullDeref, in.loc, "Deputy: null pointer"};
        }
        cycles_ += cfg_.cost.check;
        break;
      case Op::kCheckBounds: {
        int64_t v = reg(in.a);
        int64_t lo = in.b >= 0 ? reg(in.b) : 0;
        int64_t hi = reg(in.c);
        if (v < lo || v + in.imm > hi) {
          throw Trap{TrapKind::kBounds, in.loc,
                     "Deputy: bounds check failed (" + std::to_string(v) + " not in [" +
                         std::to_string(lo) + ", " + std::to_string(hi) + "))"};
        }
        cycles_ += cfg_.cost.check_bounds;
        break;
      }
      case Op::kCheckWhen:
        if (reg(in.a) == 0) {
          throw Trap{TrapKind::kUnionTag, in.loc, "Deputy: union when() guard failed"};
        }
        cycles_ += cfg_.cost.check;
        break;
      case Op::kCheckNtAdvance: {
        uint64_t addr = static_cast<uint64_t>(reg(in.a));
        ValidAccess(addr, 1, in.loc);
        if (mem_->Read(addr, 1) == 0) {
          throw Trap{TrapKind::kNtOverrun, in.loc,
                     "Deputy: advancing nullterm pointer past terminator"};
        }
        cycles_ += cfg_.cost.check;
        break;
      }
      case Op::kCheckStack:
        if (static_cast<int64_t>(stack_top_ - mem_->stack_base) > cfg_.stack_limit) {
          throw Trap{TrapKind::kStackOverflow, in.loc, "StackCheck: stack budget exceeded"};
        }
        cycles_ += cfg_.cost.check;
        break;
      case Op::kDelayedPush:
        heap_->PushDelayedScope();
        cycles_ += cfg_.cost.op;
        break;
      case Op::kDelayedPop:
        heap_->PopDelayedScope();
        cycles_ += cfg_.cost.op;
        break;
      case Op::kTrap:
        throw Trap{static_cast<TrapKind>(in.imm), in.loc, "explicit trap"};
    }
  }
  return result;
}

int64_t Vm::DoIntrinsic(const Instr& in, const std::vector<int64_t>& args) {
  auto arg = [&args](size_t i) -> int64_t { return i < args.size() ? args[i] : 0; };
  switch (static_cast<Builtin>(in.imm)) {
    case Builtin::kKmalloc: {
      int64_t size = arg(0);
      int64_t flags = arg(1);
      if ((flags & kGfpWait) != 0) {
        CheckMightSleep(in.loc, "kmalloc(GFP_WAIT)");
      }
      uint64_t p = heap_->Alloc(size, in.alloc_type_id);
      cycles_ += cfg_.cost.kmalloc + size * cfg_.cost.zero_per_byte_q / 4;
      return static_cast<int64_t>(p);
    }
    case Builtin::kKfree: {
      uint64_t p = static_cast<uint64_t>(arg(0));
      if (p == 0) {
        return 0;  // kfree(NULL) is a no-op, as in Linux
      }
      cycles_ += cfg_.cost.kfree;
      if (heap_->ccount()) {
        const HeapObject* obj = heap_->FindBase(p);
        if (obj != nullptr) {
          cycles_ += (obj->size / 32 + 1) * cfg_.cost.free_scan_per_32b;
        }
      }
      heap_->Free(p, in.loc);
      return 0;
    }
    case Builtin::kMemset: {
      uint64_t p = static_cast<uint64_t>(arg(0));
      int64_t c = arg(1);
      uint64_t n = static_cast<uint64_t>(arg(2));
      if (n == 0) {
        return 0;
      }
      ValidAccess(p, n, in.loc);
      TypedMemWrite(p, n);
      for (uint64_t i = 0; i < n; ++i) {
        mem_->Write(p + i, c & 0xff, 1);
      }
      cycles_ += static_cast<int64_t>(n) * cfg_.cost.copy_per_byte_q / 4 + 4;
      return 0;
    }
    case Builtin::kMemcpy: {
      uint64_t dst = static_cast<uint64_t>(arg(0));
      uint64_t src = static_cast<uint64_t>(arg(1));
      uint64_t n = static_cast<uint64_t>(arg(2));
      if (n == 0) {
        return 0;
      }
      ValidAccess(dst, n, in.loc);
      ValidAccess(src, n, in.loc);
      TypedMemWrite(dst, n);
      std::memmove(mem_->data() + dst, mem_->data() + src, n);
      TypedMemReinc(dst, n);
      cycles_ += static_cast<int64_t>(n) * cfg_.cost.copy_per_byte_q / 4 + 4;
      return 0;
    }
    case Builtin::kPrintk: {
      std::string fmt = ReadCString(static_cast<uint64_t>(arg(0)));
      std::string out;
      size_t argi = 1;
      for (size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] != '%' || i + 1 >= fmt.size()) {
          out.push_back(fmt[i]);
          continue;
        }
        char spec = fmt[++i];
        char buf[32];
        switch (spec) {
          case 'd':
            std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(arg(argi++)));
            out += buf;
            break;
          case 'x':
            std::snprintf(buf, sizeof buf, "%llx",
                          static_cast<unsigned long long>(arg(argi++)));
            out += buf;
            break;
          case 'c':
            out.push_back(static_cast<char>(arg(argi++)));
            break;
          case 's':
            out += ReadCString(static_cast<uint64_t>(arg(argi++)));
            break;
          case '%':
            out.push_back('%');
            break;
          default:
            out.push_back('%');
            out.push_back(spec);
        }
      }
      log_ += out;
      cycles_ += static_cast<int64_t>(out.size()) * cfg_.cost.printk_per_char_q / 4 + 8;
      return static_cast<int64_t>(out.size());
    }
    case Builtin::kPanic:
      throw Trap{TrapKind::kPanic, in.loc,
                 "panic: " + ReadCString(static_cast<uint64_t>(arg(0)))};
    case Builtin::kAssert:
      if (arg(0) == 0) {
        throw Trap{TrapKind::kAssertFail, in.loc, "__assert failed"};
      }
      return 0;
    case Builtin::kLocalIrqSave: {
      int64_t prev = irq_enabled_ ? 1 : 0;
      irq_enabled_ = false;
      cycles_ += cfg_.cost.irq_op;
      return prev;
    }
    case Builtin::kLocalIrqRestore:
      irq_enabled_ = arg(0) != 0;
      cycles_ += cfg_.cost.irq_op;
      return 0;
    case Builtin::kLocalIrqDisable:
      irq_enabled_ = false;
      cycles_ += cfg_.cost.irq_op;
      return 0;
    case Builtin::kLocalIrqEnable:
      irq_enabled_ = true;
      cycles_ += cfg_.cost.irq_op;
      return 0;
    case Builtin::kIrqsDisabled:
      cycles_ += cfg_.cost.op;
      return irq_enabled_ ? 0 : 1;
    case Builtin::kSpinLock:
      AcquireLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/true, in.loc);
      return 0;
    case Builtin::kSpinUnlock:
      ReleaseLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/true, in.loc);
      return 0;
    case Builtin::kSpinLockIrqsave: {
      int64_t prev = irq_enabled_ ? 1 : 0;
      irq_enabled_ = false;
      cycles_ += cfg_.cost.irq_op;
      AcquireLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/true, in.loc);
      return prev;
    }
    case Builtin::kSpinUnlockIrqrestore:
      ReleaseLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/true, in.loc);
      irq_enabled_ = arg(1) != 0;
      cycles_ += cfg_.cost.irq_op;
      return 0;
    case Builtin::kMutexLock:
      CheckMightSleep(in.loc, "mutex_lock");
      AcquireLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/false, in.loc);
      return 0;
    case Builtin::kMutexUnlock:
      ReleaseLock(static_cast<uint64_t>(arg(0)), /*is_spin=*/false, in.loc);
      return 0;
    case Builtin::kMightSleep:
      CheckMightSleep(in.loc, "might_sleep");
      return 0;
    case Builtin::kSchedule:
      CheckMightSleep(in.loc, "schedule");
      cycles_ += cfg_.cost.context_switch;
      ++ctx_switches_;
      return 0;
    case Builtin::kMsleep:
      CheckMightSleep(in.loc, "msleep");
      cycles_ += arg(0) * 1000;
      return 0;
    case Builtin::kUdelay:
      cycles_ += arg(0) * 100;
      return 0;
    case Builtin::kWaitEvent:
      CheckMightSleep(in.loc, "wait_event");
      cycles_ += cfg_.cost.context_switch;
      return 0;
    case Builtin::kWakeUp:
      ValidAccess(static_cast<uint64_t>(arg(0)), 8, in.loc);
      mem_->Write(static_cast<uint64_t>(arg(0)), 1, 8);
      cycles_ += cfg_.cost.op * 4;
      return 0;
    case Builtin::kWaitForCompletion: {
      CheckMightSleep(in.loc, "wait_for_completion");
      uint64_t c = static_cast<uint64_t>(arg(0));
      ValidAccess(c, 8, in.loc);
      mem_->Write(c, 0, 8);  // consume
      cycles_ += cfg_.cost.context_switch;
      return 0;
    }
    case Builtin::kComplete:
      ValidAccess(static_cast<uint64_t>(arg(0)), 8, in.loc);
      mem_->Write(static_cast<uint64_t>(arg(0)), 1, 8);
      cycles_ += cfg_.cost.op * 4;
      return 0;
    case Builtin::kCopyToUser: {
      CheckMightSleep(in.loc, "copy_to_user");
      uint64_t uaddr = static_cast<uint64_t>(arg(0));
      uint64_t src = static_cast<uint64_t>(arg(1));
      uint64_t n = static_cast<uint64_t>(arg(2));
      if (n > 0) {
        ValidAccess(src, n, in.loc);
        if (uaddr + n > user_mem_.size()) {
          user_mem_.resize(std::min<uint64_t>(uaddr + n, 16ull << 20), 0);
        }
        if (uaddr + n <= user_mem_.size()) {
          std::memcpy(user_mem_.data() + uaddr, mem_->data() + src, n);
        }
        cycles_ += static_cast<int64_t>(n) * cfg_.cost.user_copy_per_byte_q / 4 + 8;
      }
      return 0;
    }
    case Builtin::kCopyFromUser: {
      CheckMightSleep(in.loc, "copy_from_user");
      uint64_t dst = static_cast<uint64_t>(arg(0));
      uint64_t uaddr = static_cast<uint64_t>(arg(1));
      uint64_t n = static_cast<uint64_t>(arg(2));
      if (n > 0) {
        ValidAccess(dst, n, in.loc);
        TypedMemWrite(dst, n);
        for (uint64_t i = 0; i < n; ++i) {
          uint8_t byte = uaddr + i < user_mem_.size() ? user_mem_[uaddr + i] : 0;
          mem_->Write(dst + i, byte, 1);
        }
        cycles_ += static_cast<int64_t>(n) * cfg_.cost.user_copy_per_byte_q / 4 + 8;
      }
      return 0;
    }
    case Builtin::kAssertNonatomic:
      cycles_ += cfg_.cost.check;
      if (!irq_enabled_ || in_irq_ > 0) {
        throw Trap{TrapKind::kPanic, in.loc,
                   "assert_nonatomic: called with interrupts disabled"};
      }
      return 0;
    case Builtin::kTriggerIrq: {
      uint64_t h = static_cast<uint64_t>(arg(0));
      if (h < kFuncPtrBase || h - kFuncPtrBase >= module_->funcs.size()) {
        throw Trap{TrapKind::kBadIndirectCall, in.loc, "trigger_irq: bad handler"};
      }
      bool saved = irq_enabled_;
      irq_enabled_ = false;
      ++in_irq_;
      cycles_ += cfg_.cost.irq_entry;
      ExecFunction(static_cast<int>(h - kFuncPtrBase), {arg(1)});
      --in_irq_;
      irq_enabled_ = saved;
      return 0;
    }
    case Builtin::kAtomicInc: {
      uint64_t p = static_cast<uint64_t>(arg(0));
      ValidAccess(p, 8, in.loc);
      mem_->Write(p, mem_->Read(p, 8) + 1, 8);
      cycles_ += cfg_.cost.atomic_op;
      return 0;
    }
    case Builtin::kAtomicDecAndTest: {
      uint64_t p = static_cast<uint64_t>(arg(0));
      ValidAccess(p, 8, in.loc);
      int64_t v = mem_->Read(p, 8) - 1;
      mem_->Write(p, v, 8);
      cycles_ += cfg_.cost.atomic_op;
      return v == 0 ? 1 : 0;
    }
    case Builtin::kCycles:
      return cycles_;
    case Builtin::kRcOf:
      return heap_->RcOf(static_cast<uint64_t>(arg(0)));
    case Builtin::kGoodFrees:
      return heap_->stats().frees_good;
    case Builtin::kBadFrees:
      return heap_->stats().frees_bad;
    case Builtin::kContextSwitch:
      cycles_ += cfg_.cost.context_switch;
      ++ctx_switches_;
      return 0;
    case Builtin::kCount_:
      break;
  }
  throw Trap{TrapKind::kUnreachable, in.loc, "unknown intrinsic"};
}

}  // namespace ivy
