#include "src/vm/vm.h"

namespace ivy {

Vm::Vm(const IrModule* module, const TypeLayoutRegistry* layouts, VmConfig cfg)
    : Machine(layouts, cfg), module_(module) {
  SetupMemory(module_->globals_end, module_->string_pool, &module_->globals,
              GlobalInitsFromModule(*module_));
  num_funcs_ = module_->funcs.size();
  for (const IrFunc& f : module_->funcs) {
    if (f.decl != nullptr) {
      func_ids_[f.decl->name] = f.decl->func_id;
    }
  }
}

int64_t Vm::ExecEntry(int func_id, const std::vector<int64_t>& args) {
  return ExecFunction(func_id, args);
}

int64_t Vm::ExecIrqHandler(int func_id, int64_t arg) {
  return ExecFunction(func_id, {arg});
}

void Vm::PushFrame(std::vector<Frame>* frames, int func_id, const std::vector<int64_t>& args,
                   int ret_dst) {
  if (func_id < 0 || static_cast<size_t>(func_id) >= module_->funcs.size()) {
    throw Trap{TrapKind::kBadIndirectCall, SourceLoc{}, "bad function id"};
  }
  const IrFunc& fn = module_->funcs[static_cast<size_t>(func_id)];
  if (fn.blocks.empty()) {
    throw Trap{TrapKind::kBadIndirectCall, fn.decl != nullptr ? fn.decl->loc : SourceLoc{},
               "call to undefined function '" +
                   (fn.decl != nullptr ? fn.decl->name : "?") + "'"};
  }
  if (stack_top_ + static_cast<uint64_t>(fn.frame_size) >
      mem_->stack_base + mem_->stack_size) {
    throw Trap{TrapKind::kStackOverflow, fn.decl->loc, "kernel stack exhausted"};
  }
  Frame f;
  f.fn = &fn;
  f.base = stack_top_;
  f.ret_dst = ret_dst;
  f.delayed_at_entry = heap_->delayed_depth();
  stack_top_ += static_cast<uint64_t>(fn.frame_size);
  if (cfg_.track_locals && fn.frame_size > 0) {
    // Zero the frame so pointer-slot tracking starts from a clean state.
    mem_->ZeroRange(f.base, static_cast<uint64_t>(fn.frame_size));
    cycles_ += fn.frame_size * cfg_.cost.zero_per_byte_q / 4;
  }
  f.regs.assign(static_cast<size_t>(fn.num_regs), 0);
  for (size_t i = 0; i < fn.param_offsets.size() && i < args.size(); ++i) {
    uint64_t slot = f.base + static_cast<uint64_t>(fn.param_offsets[i]);
    if (cfg_.track_locals && heap_->ccount() && fn.param_sizes[i] == 8) {
      // Pointer-typed parameter slots participate in counting.
      bool is_ptr = false;
      for (int64_t off : fn.ptr_slots) {
        if (off == fn.param_offsets[i]) {
          is_ptr = true;
          break;
        }
      }
      if (is_ptr) {
        heap_->RcWrite(0, static_cast<uint64_t>(args[i]));
        ChargeRc(1);
      }
    }
    mem_->Write(slot, args[i], fn.param_sizes[i]);
  }
  cycles_ += cfg_.cost.call;
  frames->push_back(std::move(f));
}

void Vm::PopFrameStack(const Frame& f) {
  if (cfg_.track_locals && heap_->ccount()) {
    // Drop references held by pointer slots in this frame.
    for (int64_t off : f.fn->ptr_slots) {
      int64_t v = mem_->Read(f.base + static_cast<uint64_t>(off), 8);
      if (mem_->Countable(static_cast<uint64_t>(v))) {
        heap_->RcWrite(static_cast<uint64_t>(v), 0);  // dec only
        ChargeRc(1);
      }
    }
  }
  stack_top_ = f.base;
  cycles_ += cfg_.cost.ret;
}

int64_t Vm::ExecFunction(int func_id, const std::vector<int64_t>& args) {
  std::vector<Frame> frames;
  PushFrame(&frames, func_id, args, -1);
  int64_t result = 0;
  while (!frames.empty()) {
    Frame& f = frames.back();
    const std::vector<Instr>& code = f.fn->blocks[static_cast<size_t>(f.block)].instrs;
    if (f.ip >= code.size()) {
      // Block fell off the end (empty continuation block): implicit return.
      const Frame done = std::move(frames.back());
      frames.pop_back();
      PopFrameStack(done);
      if (!frames.empty() && done.ret_dst >= 0) {
        frames.back().regs[static_cast<size_t>(done.ret_dst)] = 0;
      }
      result = 0;
      continue;
    }
    const Instr& in = code[f.ip++];
    if (++steps_ > cfg_.max_steps) {
      throw Trap{TrapKind::kTimeout, in.loc, "instruction budget exceeded"};
    }
    auto reg = [&f](int r) -> int64_t { return f.regs[static_cast<size_t>(r)]; };
    switch (in.op) {
      case Op::kConst:
        f.regs[static_cast<size_t>(in.dst)] = in.imm;
        cycles_ += cfg_.cost.op;
        break;
      case Op::kMove:
        f.regs[static_cast<size_t>(in.dst)] = reg(in.a);
        cycles_ += cfg_.cost.op;
        break;
      case Op::kUn: {
        int64_t a = reg(in.a);
        int64_t v = 0;
        switch (in.un) {
          case UnOp::kNeg:
            v = -a;
            break;
          case UnOp::kLogNot:
            v = a == 0 ? 1 : 0;
            break;
          case UnOp::kBitNot:
            v = ~a;
            break;
        }
        f.regs[static_cast<size_t>(in.dst)] = v;
        cycles_ += cfg_.cost.op;
        break;
      }
      case Op::kBin: {
        int64_t a = reg(in.a);
        int64_t b = reg(in.b);
        int64_t v = 0;
        switch (in.bin) {
          case BinOp::kAdd:
            v = a + b;
            break;
          case BinOp::kSub:
            v = a - b;
            break;
          case BinOp::kMul:
            v = a * b;
            break;
          case BinOp::kDiv:
            if (b == 0) {
              throw Trap{TrapKind::kDivByZero, in.loc, "division by zero"};
            }
            v = a / b;
            break;
          case BinOp::kRem:
            if (b == 0) {
              throw Trap{TrapKind::kDivByZero, in.loc, "remainder by zero"};
            }
            v = a % b;
            break;
          case BinOp::kShl:
            v = a << (b & 63);
            break;
          case BinOp::kShr:
            v = a >> (b & 63);
            break;
          case BinOp::kLt:
            v = a < b;
            break;
          case BinOp::kGt:
            v = a > b;
            break;
          case BinOp::kLe:
            v = a <= b;
            break;
          case BinOp::kGe:
            v = a >= b;
            break;
          case BinOp::kEq:
            v = a == b;
            break;
          case BinOp::kNe:
            v = a != b;
            break;
          case BinOp::kBitAnd:
            v = a & b;
            break;
          case BinOp::kBitOr:
            v = a | b;
            break;
          case BinOp::kBitXor:
            v = a ^ b;
            break;
          case BinOp::kLogAnd:
            v = (a != 0 && b != 0) ? 1 : 0;
            break;
          case BinOp::kLogOr:
            v = (a != 0 || b != 0) ? 1 : 0;
            break;
          case BinOp::kNone:
            break;
        }
        f.regs[static_cast<size_t>(in.dst)] = v;
        cycles_ += cfg_.cost.op;
        break;
      }
      case Op::kLoad: {
        uint64_t addr = static_cast<uint64_t>(reg(in.a));
        ValidAccess(addr, in.size, in.loc);
        f.regs[static_cast<size_t>(in.dst)] = mem_->Read(addr, in.size);
        cycles_ += cfg_.cost.load;
        break;
      }
      case Op::kStore: {
        uint64_t addr = static_cast<uint64_t>(reg(in.a));
        ValidAccess(addr, in.size, in.loc);
        mem_->Write(addr, reg(in.b), in.size);
        cycles_ += cfg_.cost.store;
        break;
      }
      case Op::kStorePtr:
        DoStorePtr(static_cast<uint64_t>(reg(in.a)), reg(in.b), in.loc);
        break;
      case Op::kFrameAddr:
        f.regs[static_cast<size_t>(in.dst)] = static_cast<int64_t>(f.base) + in.imm;
        cycles_ += cfg_.cost.op;
        break;
      case Op::kGlobalAddr:
        f.regs[static_cast<size_t>(in.dst)] = in.imm;
        cycles_ += cfg_.cost.op;
        break;
      case Op::kFuncConst:
        f.regs[static_cast<size_t>(in.dst)] =
            static_cast<int64_t>(kFuncPtrBase + static_cast<uint64_t>(in.imm));
        cycles_ += cfg_.cost.op;
        break;
      case Op::kStrConst:
        f.regs[static_cast<size_t>(in.dst)] =
            static_cast<int64_t>(string_addrs_[static_cast<size_t>(in.imm)]);
        cycles_ += cfg_.cost.op;
        break;
      case Op::kCall: {
        std::vector<int64_t> call_args;
        call_args.reserve(in.args.size());
        for (int r : in.args) {
          call_args.push_back(reg(r));
        }
        PushFrame(&frames, static_cast<int>(in.imm), call_args, in.dst);
        break;
      }
      case Op::kCallInd: {
        uint64_t fp = static_cast<uint64_t>(reg(in.a));
        if (fp < kFuncPtrBase || fp - kFuncPtrBase >= module_->funcs.size()) {
          throw Trap{TrapKind::kBadIndirectCall, in.loc,
                     "indirect call through invalid function pointer"};
        }
        std::vector<int64_t> call_args;
        call_args.reserve(in.args.size());
        for (int r : in.args) {
          call_args.push_back(reg(r));
        }
        PushFrame(&frames, static_cast<int>(fp - kFuncPtrBase), call_args, in.dst);
        break;
      }
      case Op::kIntrinsic: {
        std::vector<int64_t> call_args;
        call_args.reserve(in.args.size());
        for (int r : in.args) {
          call_args.push_back(reg(r));
        }
        int64_t v = DoIntrinsic(static_cast<Builtin>(in.imm), in.loc, in.alloc_type_id,
                                call_args.data(), call_args.size());
        if (in.dst >= 0) {
          f.regs[static_cast<size_t>(in.dst)] = v;
        }
        cycles_ += cfg_.cost.intrinsic;
        break;
      }
      case Op::kRet: {
        // Unwind any delayed_free scopes this function opened but left open
        // via an early return.
        while (heap_->delayed_depth() > f.delayed_at_entry) {
          heap_->PopDelayedScope();
        }
        int64_t value = in.a >= 0 ? reg(in.a) : 0;
        const Frame done = std::move(frames.back());
        frames.pop_back();
        PopFrameStack(done);
        if (frames.empty()) {
          return value;
        }
        if (done.ret_dst >= 0) {
          frames.back().regs[static_cast<size_t>(done.ret_dst)] = value;
        }
        result = value;
        break;
      }
      case Op::kJump:
        f.block = static_cast<int>(in.imm);
        f.ip = 0;
        cycles_ += cfg_.cost.op;
        break;
      case Op::kBranch:
        f.block = reg(in.a) != 0 ? static_cast<int>(in.imm) : static_cast<int>(in.imm2);
        f.ip = 0;
        cycles_ += cfg_.cost.op;
        break;
      case Op::kCheckNonNull:
        if (reg(in.a) == 0) {
          throw Trap{TrapKind::kNullDeref, in.loc, "Deputy: null pointer"};
        }
        cycles_ += cfg_.cost.check;
        break;
      case Op::kCheckBounds: {
        int64_t v = reg(in.a);
        int64_t lo = in.b >= 0 ? reg(in.b) : 0;
        int64_t hi = reg(in.c);
        if (v < lo || v + in.imm > hi) {
          throw Trap{TrapKind::kBounds, in.loc,
                     "Deputy: bounds check failed (" + std::to_string(v) + " not in [" +
                         std::to_string(lo) + ", " + std::to_string(hi) + "))"};
        }
        cycles_ += cfg_.cost.check_bounds;
        break;
      }
      case Op::kCheckWhen:
        if (reg(in.a) == 0) {
          throw Trap{TrapKind::kUnionTag, in.loc, "Deputy: union when() guard failed"};
        }
        cycles_ += cfg_.cost.check;
        break;
      case Op::kCheckNtAdvance: {
        uint64_t addr = static_cast<uint64_t>(reg(in.a));
        ValidAccess(addr, 1, in.loc);
        if (mem_->Read(addr, 1) == 0) {
          throw Trap{TrapKind::kNtOverrun, in.loc,
                     "Deputy: advancing nullterm pointer past terminator"};
        }
        cycles_ += cfg_.cost.check;
        break;
      }
      case Op::kCheckStack:
        if (static_cast<int64_t>(stack_top_ - mem_->stack_base) > cfg_.stack_limit) {
          throw Trap{TrapKind::kStackOverflow, in.loc, "StackCheck: stack budget exceeded"};
        }
        cycles_ += cfg_.cost.check;
        break;
      case Op::kDelayedPush:
        heap_->PushDelayedScope();
        cycles_ += cfg_.cost.op;
        break;
      case Op::kDelayedPop:
        heap_->PopDelayedScope();
        cycles_ += cfg_.cost.op;
        break;
      case Op::kTrap:
        throw Trap{static_cast<TrapKind>(in.imm), in.loc, "explicit trap"};
    }
  }
  return result;
}

}  // namespace ivy
