// LockSafe (§3.1, first future analysis): "a hybrid checking tool for
// verifying lock safety in Linux. In addition to checking that deadlocks are
// impossible by verifying that the code uses a consistent locking order,
// this analysis will check Linux-specific invariants such as the requirement
// that the same spinlock is not acquired in interrupts and in process
// context with interrupts turned on."
//
// Locks are named structurally ("net_device.stats_lock", "rq.lock") — the
// paper's "light annotations will be used to name the locks" realized from
// the declarations themselves. The static half walks each function tracking
// the held set and builds a lock-order graph; cycles are potential
// deadlocks. The dynamic half validates the same properties against the
// orders and contexts the VM actually observed (Vm::lock_order_edges /
// lock_usage).
#ifndef SRC_LOCKSAFE_LOCKSAFE_H_
#define SRC_LOCKSAFE_LOCKSAFE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/mc/ast.h"
#include "src/tool/finding.h"
#include "src/vm/machine.h"

namespace ivy {

class FunctionSharder;
class WorkQueue;

struct LockOrderEdge {
  std::string held;
  std::string acquired;
  SourceLoc loc;
  std::string func;
};

struct LockSafeReport {
  std::vector<LockOrderEdge> edges;
  // Each cycle is a sequence of lock names forming a potential ABBA deadlock.
  std::vector<std::vector<std::string>> deadlock_cycles;
  // Locks acquired both in IRQ context and in process context with IRQs on.
  std::vector<std::string> irq_unsafe_locks;
  int locks_seen = 0;
  // Link-stage exports (AnalysisSession::RunLinked). `extern_irq_callees`:
  // extern-declared functions reachable from this module's irq entries — the
  // defining module must treat them as irq-reachable too. `locks_acquired`:
  // per defined function, the sorted lock names its body acquires (the
  // summary schema's lock-delta facts; informational for the repository).
  std::vector<std::string> extern_irq_callees;
  std::map<std::string, std::vector<std::string>> locks_acquired;

  std::string ToString() const;

  // Unified-pipeline view: deadlock cycles are errors (witness = the lock
  // cycle), IRQ-unsafe locks are warnings. `origin` distinguishes the static
  // walk from the runtime validator in merged reports.
  std::vector<Finding> ToFindings(const std::string& origin = "static") const;
};

class LockSafe {
 public:
  LockSafe(const Program* prog, const Sema* sema, const CallGraph* cg);

  LockSafeReport Run();

  // Sharded kernels over `sharder` (which must partition this call graph's
  // DefinedFuncs()) driven by `wq`. The per-function lock walks are pure
  // (each collects edges and context bits privately); merging the per-shard
  // collections in shard order reproduces the serial first-occurrence edge
  // order, so findings are byte-identical to Run().
  LockSafeReport Run(const FunctionSharder& sharder, WorkQueue& wq);

  // Validates the runtime-observed lock behaviour of a finished VM run
  // against the same two properties. Lock addresses are rendered through the
  // module's global table where possible.
  // Accepts any Machine (tree Vm or bytecode BcVm): the runtime lock facts
  // live on the shared runtime core, so both interpreters feed the same
  // validator.
  static LockSafeReport ValidateRuntime(const Machine& vm, const IrModule& module);

 private:
  struct Ctx {
    std::vector<std::string> held;
    bool in_irq = false;
  };
  // What one walk collects: lock-order edges (deduplicated first-seen),
  // plus per-lock context bits (bit 1 = irq, bit 2 = process irqs-on).
  struct Collector {
    std::vector<LockOrderEdge> edges;
    std::set<std::pair<std::string, std::string>> edge_set;
    std::map<std::string, int> lock_ctx;
    std::map<std::string, std::set<std::string>> locks_by_func;
  };
  void ComputeIrqReachable();
  void WalkFunction(const FuncDecl* fn, Collector* out) const;
  void WalkStmt(const FuncDecl* fn, const Stmt* s, Ctx* ctx, Collector* out) const;
  void WalkExpr(const FuncDecl* fn, const Expr* e, Ctx* ctx, Collector* out) const;
  LockSafeReport BuildReport(const Collector& all) const;
  static std::string LockName(const Expr* arg);
  static void FindCycles(const std::set<std::pair<std::string, std::string>>& graph,
                         std::vector<std::vector<std::string>>* cycles);

  const Program* prog_;
  const Sema* sema_;
  const CallGraph* cg_;
  std::set<const FuncDecl*> irq_reachable_;
};

}  // namespace ivy

#endif  // SRC_LOCKSAFE_LOCKSAFE_H_
