#include "src/locksafe/locksafe.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "src/tool/function_sharder.h"

namespace ivy {

LockSafe::LockSafe(const Program* prog, const Sema* sema, const CallGraph* cg)
    : prog_(prog), sema_(sema), cg_(cg) {}

std::string LockSafe::LockName(const Expr* arg) {
  // spin_lock(&EXPR): name the lock by its structural path.
  const Expr* e = arg;
  if (e != nullptr && e->kind == ExprKind::kAddrOf) {
    e = e->a;
  }
  if (e == nullptr) {
    return "<unknown>";
  }
  if (e->kind == ExprKind::kMember && e->field_record != nullptr) {
    return e->field_record->name + "." + std::string(e->str_val);
  }
  if (e->kind == ExprKind::kIdent && e->sym != nullptr) {
    if (e->sym->kind == SymKind::kGlobal) {
      return e->sym->name;
    }
    return "<local:" + e->sym->name + ">";
  }
  return "<unknown>";
}

void LockSafe::WalkExpr(const FuncDecl* fn, const Expr* e, Ctx* ctx, Collector* out) const {
  if (e == nullptr) {
    return;
  }
  WalkExpr(fn, e->a, ctx, out);
  WalkExpr(fn, e->b, ctx, out);
  WalkExpr(fn, e->c, ctx, out);
  for (const Expr* arg : e->args) {
    WalkExpr(fn, arg, ctx, out);
  }
  if (e->kind != ExprKind::kCall || e->a->kind != ExprKind::kIdent || e->args.empty()) {
    return;
  }
  std::string_view callee = e->a->str_val;
  bool is_acquire = callee == "spin_lock" || callee == "spin_lock_irqsave" ||
                    callee == "mutex_lock";
  bool is_release = callee == "spin_unlock" || callee == "spin_unlock_irqrestore" ||
                    callee == "mutex_unlock";
  bool irqsafe = callee == "spin_lock_irqsave";
  if (!is_acquire && !is_release) {
    return;
  }
  std::string name = LockName(e->args[0]);
  if (is_acquire) {
    for (const std::string& held : ctx->held) {
      if (held != name && out->edge_set.insert({held, name}).second) {
        out->edges.push_back(LockOrderEdge{held, name, e->loc, fn->name});
      }
    }
    ctx->held.push_back(name);
    out->locks_by_func[fn->name].insert(name);
    int& bits = out->lock_ctx[name];
    if (ctx->in_irq) {
      bits |= 1;
    } else if (!irqsafe) {
      bits |= 2;  // process context without disabling interrupts
    }
  } else {
    auto it = std::find(ctx->held.rbegin(), ctx->held.rend(), name);
    if (it != ctx->held.rend()) {
      ctx->held.erase(std::next(it).base());
    }
  }
}

void LockSafe::WalkStmt(const FuncDecl* fn, const Stmt* s, Ctx* ctx, Collector* out) const {
  if (s == nullptr) {
    return;
  }
  WalkExpr(fn, s->expr, ctx, out);
  WalkExpr(fn, s->cond, ctx, out);
  WalkExpr(fn, s->step, ctx, out);
  if (s->decl != nullptr) {
    WalkExpr(fn, s->decl->init, ctx, out);
  }
  WalkStmt(fn, s->init, ctx, out);
  WalkStmt(fn, s->then_stmt, ctx, out);
  WalkStmt(fn, s->else_stmt, ctx, out);
  for (const Stmt* child : s->body) {
    WalkStmt(fn, child, ctx, out);
  }
}

void LockSafe::WalkFunction(const FuncDecl* fn, Collector* out) const {
  Ctx ctx;
  ctx.in_irq = irq_reachable_.count(fn) != 0;
  WalkStmt(fn, fn->body, &ctx, out);
}

void LockSafe::FindCycles(const std::set<std::pair<std::string, std::string>>& graph,
                          std::vector<std::vector<std::string>>* cycles) {
  // Report each 2-cycle (the ABBA pattern) and longer cycles via DFS.
  std::map<std::string, std::vector<std::string>> succ;
  for (const auto& [a, b] : graph) {
    succ[a].push_back(b);
  }
  std::set<std::pair<std::string, std::string>> seen_pair;
  for (const auto& [a, b] : graph) {
    if (graph.count({b, a}) != 0 && a < b && seen_pair.insert({a, b}).second) {
      cycles->push_back({a, b});
    }
  }
  // Longer cycles: bounded DFS from each node.
  for (const auto& [start, outs] : succ) {
    std::vector<std::string> path{start};
    std::deque<std::pair<std::string, size_t>> stack;
    (void)outs;
    std::function<void(const std::string&)> dfs = [&](const std::string& node) {
      if (path.size() > 4) {
        return;
      }
      for (const std::string& next : succ[node]) {
        if (next == start && path.size() > 2) {
          std::vector<std::string> cycle = path;
          // Canonicalize: only report if start is the smallest element.
          if (*std::min_element(cycle.begin(), cycle.end()) == start) {
            cycles->push_back(cycle);
          }
          continue;
        }
        if (std::find(path.begin(), path.end(), next) == path.end()) {
          path.push_back(next);
          dfs(next);
          path.pop_back();
        }
      }
    };
    dfs(start);
  }
}

void LockSafe::ComputeIrqReachable() {
  // IRQ-reachable functions: BFS from interrupt entries over the call graph.
  // Imported cross-module facts seed alongside the local entries: a defined
  // function some other module reaches from ITS irq entries is irq-reachable
  // here too.
  std::deque<const FuncDecl*> work(cg_->irq_entries().begin(), cg_->irq_entries().end());
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    if (fn->attrs.entered_in_irq) {
      work.push_back(fn);
    }
  }
  while (!work.empty()) {
    const FuncDecl* fn = work.front();
    work.pop_front();
    if (!irq_reachable_.insert(fn).second) {
      continue;
    }
    for (const FuncDecl* callee : cg_->Callees(fn)) {
      work.push_back(callee);
    }
  }
}

LockSafeReport LockSafe::BuildReport(const Collector& all) const {
  LockSafeReport report;
  report.edges = all.edges;
  report.locks_seen = static_cast<int>(all.lock_ctx.size());
  FindCycles(all.edge_set, &report.deadlock_cycles);
  for (const auto& [name, bits] : all.lock_ctx) {
    if ((bits & 1) != 0 && (bits & 2) != 0) {
      report.irq_unsafe_locks.push_back(name);
    }
  }
  for (const auto& [fn, locks] : all.locks_by_func) {
    report.locks_acquired[fn] = std::vector<std::string>(locks.begin(), locks.end());
  }
  // Extern callees the irq BFS reached: the top-down link export. Sorted by
  // construction (std::set of FuncDecl* re-keyed by name below).
  std::set<std::string> extern_irq;
  for (const FuncDecl* fn : irq_reachable_) {
    if (fn->body == nullptr && !fn->is_builtin) {
      extern_irq.insert(fn->name);
    }
  }
  report.extern_irq_callees.assign(extern_irq.begin(), extern_irq.end());
  return report;
}

LockSafeReport LockSafe::Run() {
  ComputeIrqReachable();
  Collector all;
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    WalkFunction(fn, &all);
  }
  return BuildReport(all);
}

LockSafeReport LockSafe::Run(const FunctionSharder& sharder, WorkQueue& wq) {
  ComputeIrqReachable();
  const std::vector<const FuncDecl*>& funcs = sharder.functions();
  // Per-shard collectors (each deduplicates its own range first-seen), then
  // a shard-order merge: the surviving edge sequence equals the serial
  // walk's global first-occurrence order, byte for byte.
  std::vector<std::vector<Collector>> chunks = sharder.MapChunks<Collector>(
      wq, funcs.size(), [this, &funcs](int, size_t begin, size_t end) {
        Collector local;
        for (size_t i = begin; i < end; ++i) {
          WalkFunction(funcs[i], &local);
        }
        return std::vector<Collector>{std::move(local)};
      });
  Collector all;
  for (std::vector<Collector>& chunk : chunks) {
    for (Collector& local : chunk) {
      for (LockOrderEdge& e : local.edges) {
        if (all.edge_set.insert({e.held, e.acquired}).second) {
          all.edges.push_back(std::move(e));
        }
      }
      for (const auto& [name, bits] : local.lock_ctx) {
        all.lock_ctx[name] |= bits;
      }
      for (auto& [fn, locks] : local.locks_by_func) {
        all.locks_by_func[fn].insert(locks.begin(), locks.end());
      }
    }
  }
  return BuildReport(all);
}

LockSafeReport LockSafe::ValidateRuntime(const Machine& vm, const IrModule& module) {
  auto name_of = [&module](uint64_t addr) -> std::string {
    for (const GlobalSlot& g : module.globals) {
      if (addr >= g.addr && addr < g.addr + static_cast<uint64_t>(g.size)) {
        return g.decl != nullptr ? std::string(g.decl->name) : "<global>";
      }
    }
    return "heap@" + std::to_string(addr);
  };
  LockSafeReport report;
  std::set<std::pair<std::string, std::string>> graph;
  for (const auto& [a, b] : vm.lock_order_edges()) {
    std::string na = name_of(a);
    std::string nb = name_of(b);
    if (graph.insert({na, nb}).second) {
      report.edges.push_back(LockOrderEdge{na, nb, SourceLoc{}, "<runtime>"});
    }
  }
  FindCycles(graph, &report.deadlock_cycles);
  for (const auto& [addr, usage] : vm.lock_usage()) {
    if (usage.in_irq && usage.process_irqs_on) {
      report.irq_unsafe_locks.push_back(name_of(addr));
    }
  }
  report.locks_seen = static_cast<int>(vm.lock_usage().size());
  return report;
}

std::string LockSafeReport::ToString() const {
  std::string out;
  out += "LockSafe: " + std::to_string(locks_seen) + " locks, " +
         std::to_string(edges.size()) + " order edges\n";
  out += "  potential deadlocks (inconsistent lock order): " +
         std::to_string(deadlock_cycles.size()) + "\n";
  for (const auto& cycle : deadlock_cycles) {
    out += "    cycle:";
    for (const std::string& l : cycle) {
      out += " " + l + " ->";
    }
    out += " " + cycle.front() + "\n";
  }
  out += "  spinlocks acquired in IRQ context AND in process context with irqs on: " +
         std::to_string(irq_unsafe_locks.size()) + "\n";
  for (const std::string& l : irq_unsafe_locks) {
    out += "    " + l + "\n";
  }
  return out;
}

std::vector<Finding> LockSafeReport::ToFindings(const std::string& origin) const {
  std::vector<Finding> out;
  for (const auto& cycle : deadlock_cycles) {
    Finding f;
    f.tool = "locksafe";
    f.severity = FindingSeverity::kError;
    f.message = "potential deadlock: inconsistent lock order (" + origin + ")";
    f.witness = cycle;
    // Anchor the finding at an edge that is actually part of the cycle
    // (held -> acquired matches a consecutive pair of cycle locks).
    bool anchored = false;
    for (size_t i = 0; i < cycle.size() && !anchored; ++i) {
      const std::string& held = cycle[i];
      const std::string& acquired = cycle[(i + 1) % cycle.size()];
      for (const LockOrderEdge& e : edges) {
        if (e.held == held && e.acquired == acquired) {
          f.loc = e.loc;
          anchored = true;
          break;
        }
      }
    }
    out.push_back(std::move(f));
  }
  for (const std::string& lock : irq_unsafe_locks) {
    Finding f;
    f.tool = "locksafe";
    f.severity = FindingSeverity::kWarning;
    f.message = "lock '" + lock + "' acquired in IRQ context and in process context with interrupts on (" +
                origin + ")";
    f.witness = {lock};
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace ivy
