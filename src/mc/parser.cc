#include "src/mc/parser.h"

namespace ivy {

Parser::Parser(Program* prog, std::vector<Token> tokens, DiagEngine* diags)
    : prog_(prog), owned_tokens_(std::move(tokens)), tokens_(&owned_tokens_),
      diags_(diags) {}

Parser::Parser(Program* prog, const std::vector<Token>* tokens, DiagEngine* diags)
    : prog_(prog), tokens_(tokens), diags_(diags) {}

const Token& Parser::Ahead(int n) const {
  size_t p = pos_ + static_cast<size_t>(n);
  return p < tokens_->size() ? (*tokens_)[p] : tokens_->back();
}

void Parser::Advance() {
  if (pos_ + 1 < tokens_->size()) {
    ++pos_;
  }
}

bool Parser::Accept(Tok t) {
  if (At(t)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::AtIdentLike() const {
  switch (Cur().kind) {
    case Tok::kIdent:
    case Tok::kKwCount:
    case Tok::kKwBound:
    case Tok::kKwNullterm:
    case Tok::kKwOpt:
    case Tok::kKwNonnull:
    case Tok::kKwWhen:
    case Tok::kKwBlocking:
    case Tok::kKwNoblock:
    case Tok::kKwErrcode:
      return true;
    default:
      return false;
  }
}

bool Parser::Expect(Tok t, const char* context) {
  if (Accept(t)) {
    return true;
  }
  diags_->Error(Cur().loc,
                std::string("expected ") + TokName(t) + " " + context + ", found " +
                    TokName(Cur().kind),
                "parse");
  return false;
}

void Parser::SyncToSemi() {
  while (!At(Tok::kEof) && !At(Tok::kSemi) && !At(Tok::kRBrace)) {
    Advance();
  }
  Accept(Tok::kSemi);
}

bool Parser::AtTypeStart() const {
  switch (Cur().kind) {
    case Tok::kKwInt:
    case Tok::kKwChar:
    case Tok::kKwVoid:
    case Tok::kKwStruct:
    case Tok::kKwUnion:
    case Tok::kKwConst:
      return true;
    case Tok::kIdent:
      return prog_->typedefs.count(Cur().text) > 0;
    default:
      return false;
  }
}

const Type* Parser::ParseBaseType() {
  Accept(Tok::kKwConst);  // const is accepted and ignored (erasure semantics)
  SourceLoc loc = Cur().loc;
  switch (Cur().kind) {
    case Tok::kKwInt:
      Advance();
      return prog_->IntType();
    case Tok::kKwChar:
      Advance();
      return prog_->CharType();
    case Tok::kKwVoid:
      Advance();
      return prog_->VoidType();
    case Tok::kKwStruct:
    case Tok::kKwUnion: {
      bool is_union = At(Tok::kKwUnion);
      Advance();
      if (!At(Tok::kIdent)) {
        diags_->Error(loc, "expected record name", "parse");
        return prog_->NewType(TypeKind::kError);
      }
      std::string name = Cur().text;
      Advance();
      RecordDecl* rec = prog_->FindRecord(name);
      if (rec == nullptr) {
        rec = prog_->NewRecord();
        rec->name = name;
        rec->is_union = is_union;
        rec->loc = loc;
        prog_->records.push_back(rec);
      }
      Type* t = prog_->NewType(TypeKind::kRecord);
      t->record = rec;
      return t;
    }
    case Tok::kIdent: {
      auto it = prog_->typedefs.find(Cur().text);
      if (it != prog_->typedefs.end()) {
        Advance();
        return it->second;
      }
      diags_->Error(loc, "unknown type name '" + Cur().text + "'", "parse");
      Advance();
      return prog_->NewType(TypeKind::kError);
    }
    default:
      diags_->Error(loc, std::string("expected type, found ") + TokName(Cur().kind), "parse");
      Advance();
      return prog_->NewType(TypeKind::kError);
  }
}

void Parser::ParsePtrAnnots(PtrAnnot* annot) {
  for (;;) {
    switch (Cur().kind) {
      case Tok::kKwCount: {
        Advance();
        Expect(Tok::kLParen, "after 'count'");
        annot->bounds = BoundsKind::kCount;
        annot->count = ParseNoRefExpr([&] { return ParseExpr(); });
        Expect(Tok::kRParen, "after count expression");
        break;
      }
      case Tok::kKwBound: {
        Advance();
        Expect(Tok::kLParen, "after 'bound'");
        annot->bounds = BoundsKind::kBound;
        annot->lo = ParseNoRefExpr([&] { return ParseExpr(); });
        Expect(Tok::kComma, "in bound()");
        annot->hi = ParseNoRefExpr([&] { return ParseExpr(); });
        Expect(Tok::kRParen, "after bound expressions");
        break;
      }
      case Tok::kKwNullterm:
        Advance();
        annot->bounds = BoundsKind::kNullterm;
        break;
      case Tok::kKwOpt:
        Advance();
        annot->opt = true;
        break;
      case Tok::kKwNonnull:
        Advance();
        annot->opt = false;
        break;
      case Tok::kKwTrusted:
        Advance();
        annot->trusted = true;
        break;
      default:
        return;
    }
  }
}

const Type* Parser::ParseType() {
  const Type* t = ParseBaseType();
  while (At(Tok::kStar)) {
    Advance();
    Type* p = prog_->PtrTo(t);
    ParsePtrAnnots(&p->annot);
    t = p;
  }
  return t;
}

const Type* Parser::ParseArraySuffix(const Type* base) {
  const Type* t = base;
  if (Accept(Tok::kLBracket)) {
    Expr* len = ParseNoRefExpr([&] { return ParseExpr(); });
    int64_t n = 0;
    if (!EvalConstInt(len, &n) || n <= 0) {
      diags_->Error(len != nullptr ? len->loc : Cur().loc,
                    "array length must be a positive constant", "parse");
      n = 1;
    }
    Expect(Tok::kRBracket, "after array length");
    Type* arr = prog_->NewType(TypeKind::kArray);
    arr->elem = t;
    arr->array_len = n;
    t = arr;
  }
  return t;
}

void Parser::ParseTranslationUnit() {
  while (!At(Tok::kEof)) {
    ParseTopLevel();
  }
}

void Parser::ParseTopLevel() {
  switch (Cur().kind) {
    case Tok::kKwTypedef:
      ParseTypedef();
      return;
    case Tok::kKwStruct:
    case Tok::kKwUnion: {
      // Distinguish "struct S { ... };" (definition) from "struct S x;".
      if (Ahead(1).kind == Tok::kIdent && Ahead(2).kind == Tok::kLBrace) {
        ParseRecord(Cur().kind == Tok::kKwUnion);
        return;
      }
      ParseFuncOrGlobal();
      return;
    }
    case Tok::kKwEnum:
      ParseEnum();
      return;
    case Tok::kSemi:
      Advance();
      return;
    case Tok::kKwExtern:
    case Tok::kKwStatic:
      Advance();  // storage classes accepted and ignored
      ParseTopLevel();
      return;
    default:
      if (AtTypeStart()) {
        ParseFuncOrGlobal();
        return;
      }
      diags_->Error(Cur().loc,
                    std::string("expected declaration, found ") + TokName(Cur().kind), "parse");
      Advance();
      SyncToSemi();
  }
}

void Parser::ParseTypedef() {
  Advance();  // typedef
  const Type* base = ParseType();
  if (!At(Tok::kIdent)) {
    diags_->Error(Cur().loc, "expected typedef name", "parse");
    SyncToSemi();
    return;
  }
  std::string name = Cur().text;
  SourceLoc loc = Cur().loc;
  Advance();
  if (At(Tok::kLParen)) {
    // Function type typedef: typedef RET NAME(params...);
    Advance();
    Type* fn = prog_->NewType(TypeKind::kFunc);
    fn->ret = base;
    if (!At(Tok::kRParen)) {
      do {
        if (At(Tok::kKwVoid) && Ahead(1).kind == Tok::kRParen) {
          Advance();
          break;
        }
        const Type* pt = ParseType();
        if (At(Tok::kIdent)) {
          Advance();  // parameter names in typedefs are documentation only
        }
        fn->params.push_back(pt);
      } while (Accept(Tok::kComma));
    }
    Expect(Tok::kRParen, "after typedef parameter list");
    prog_->typedefs[prog_->Intern(name).view] = fn;
  } else {
    const Type* t = ParseArraySuffix(base);
    prog_->typedefs[prog_->Intern(name).view] = t;
  }
  if (prog_->typedefs.count(name) == 0) {
    diags_->Error(loc, "typedef failed", "parse");
  }
  Expect(Tok::kSemi, "after typedef");
}

void Parser::ParseRecord(bool is_union) {
  SourceLoc loc = Cur().loc;
  Advance();  // struct/union
  std::string name = Cur().text;
  Advance();  // name
  RecordDecl* rec = prog_->FindRecord(name);
  if (rec != nullptr && rec->complete) {
    diags_->Error(loc, "redefinition of record '" + name + "'", "parse");
    rec = prog_->NewRecord();  // parse into a throwaway
  }
  if (rec == nullptr) {
    rec = prog_->NewRecord();
    rec->name = name;
    rec->loc = loc;
    prog_->records.push_back(rec);
  }
  rec->is_union = is_union;
  ParseRecordBody(rec, nullptr);
  Expect(Tok::kSemi, "after record definition");
}

RecordDecl* Parser::ParseRecordBody(RecordDecl* rec, RecordDecl* parent_struct) {
  Expect(Tok::kLBrace, "to open record body");
  rec->parent_struct = parent_struct;
  int index = 0;
  while (!At(Tok::kRBrace) && !At(Tok::kEof)) {
    // Inline anonymous union: "union { fields } name;"
    if (At(Tok::kKwUnion) && Ahead(1).kind == Tok::kLBrace) {
      SourceLoc uloc = Cur().loc;
      Advance();
      RecordDecl* inner = prog_->NewRecord();
      inner->name = rec->name + "::$union" + std::to_string(anon_union_count_++);
      inner->is_union = true;
      inner->loc = uloc;
      prog_->records.push_back(inner);
      ParseRecordBody(inner, rec);
      RecordField f;
      Type* ut = prog_->NewType(TypeKind::kRecord);
      ut->record = inner;
      f.type = ut;
      f.loc = uloc;
      if (At(Tok::kIdent)) {
        f.name = Cur().text;
        Advance();
      } else {
        diags_->Error(Cur().loc, "inline union must be a named field", "parse");
      }
      f.index = index++;
      rec->fields.push_back(f);
      Expect(Tok::kSemi, "after union field");
      continue;
    }
    const Type* base = ParseType();
    if (!AtIdentLike()) {
      diags_->Error(Cur().loc, "expected field name", "parse");
      SyncToSemi();
      continue;
    }
    RecordField f;
    f.name = Cur().text;
    f.loc = Cur().loc;
    Advance();
    f.type = ParseArraySuffix(base);
    if (Accept(Tok::kKwWhen)) {
      Expect(Tok::kLParen, "after 'when'");
      f.when = ParseExpr();
      Expect(Tok::kRParen, "after when expression");
    }
    f.index = index++;
    rec->fields.push_back(f);
    Expect(Tok::kSemi, "after field");
  }
  Expect(Tok::kRBrace, "to close record body");
  rec->complete = true;
  return rec;
}

void Parser::ParseEnum() {
  Advance();  // enum
  if (At(Tok::kIdent)) {
    Advance();  // optional tag, ignored (enum values are plain ints)
  }
  Expect(Tok::kLBrace, "to open enum");
  int64_t next = 0;
  while (At(Tok::kIdent)) {
    std::string name = Cur().text;
    SourceLoc loc = Cur().loc;
    Advance();
    if (Accept(Tok::kAssign)) {
      Expr* e = ParseNoRefExpr([&] { return ParseCond(); });
      int64_t v = 0;
      if (!EvalConstInt(e, &v)) {
        diags_->Error(loc, "enum value must be constant", "parse");
      }
      next = v;
    }
    if (prog_->enum_consts.count(name) != 0) {
      diags_->Error(loc, "duplicate enum constant '" + name + "'", "parse");
    }
    prog_->enum_consts[prog_->Intern(name).view] = next;
    ++next;
    if (!Accept(Tok::kComma)) {
      break;
    }
  }
  Expect(Tok::kRBrace, "to close enum");
  Expect(Tok::kSemi, "after enum");
}

FuncAttrs Parser::ParseFuncAttrs() {
  FuncAttrs attrs;
  for (;;) {
    switch (Cur().kind) {
      case Tok::kKwBlocking:
        Advance();
        attrs.blocking = true;
        break;
      case Tok::kKwBlockingIf: {
        Advance();
        Expect(Tok::kLParen, "after 'blocking_if'");
        if (At(Tok::kIdent)) {
          // Resolved to a parameter index in sema; store the name via errcodes
          // trick is ugly, so stash the spelling in a dedicated field below.
          attrs.blocking_if_param = -2;  // marker: name follows in blocking_if_name
          blocking_if_name_ = Cur().text;
          Advance();
        } else {
          diags_->Error(Cur().loc, "expected parameter name in blocking_if()", "parse");
        }
        Expect(Tok::kRParen, "after blocking_if parameter");
        break;
      }
      case Tok::kKwNoblock:
        Advance();
        attrs.noblock = true;
        break;
      case Tok::kKwInterruptHandler:
        Advance();
        attrs.interrupt_handler = true;
        break;
      case Tok::kKwTrusted:
        Advance();
        attrs.trusted = true;
        break;
      case Tok::kKwErrcode: {
        Advance();
        Expect(Tok::kLParen, "after 'errcode'");
        do {
          Expr* e = ParseNoRefExpr([&] { return ParseCond(); });
          int64_t v = 0;
          if (EvalConstInt(e, &v)) {
            attrs.errcodes.push_back(v);
          } else {
            diags_->Error(Cur().loc, "errcode values must be constant", "parse");
          }
        } while (Accept(Tok::kComma));
        Expect(Tok::kRParen, "after errcode list");
        break;
      }
      default:
        return attrs;
    }
  }
}

void Parser::ParseFuncOrGlobal() {
  // Taken before the return type: its annotation expressions belong to the
  // function's slab span if this turns out to be a function.
  func_expr_mark_ = prog_->expr_count();
  func_stmt_mark_ = prog_->stmt_count();
  func_decl_mark_ = prog_->decl_count();
  SourceLoc loc = Cur().loc;
  const Type* base = ParseType();
  if (!At(Tok::kIdent)) {
    diags_->Error(Cur().loc, "expected declaration name", "parse");
    SyncToSemi();
    return;
  }
  std::string name = Cur().text;
  loc = Cur().loc;
  Advance();
  if (At(Tok::kLParen)) {
    ParseFuncRest(base, name, loc);
    return;
  }
  // Global variable(s).
  for (;;) {
    VarDecl* g = prog_->NewVarDecl();
    SetName(g, name);
    g->loc = loc;
    g->is_global = true;
    g->type = ParseArraySuffix(base);
    if (Accept(Tok::kAssign)) {
      g->init = ParseAssign();
    }
    prog_->globals.push_back(g);
    if (!Accept(Tok::kComma)) {
      break;
    }
    if (!At(Tok::kIdent)) {
      diags_->Error(Cur().loc, "expected declarator name", "parse");
      break;
    }
    name = Cur().text;
    loc = Cur().loc;
    Advance();
  }
  Expect(Tok::kSemi, "after global declaration");
}

void Parser::ParseFuncRest(const Type* ret, const std::string& name, SourceLoc loc) {
  Advance();  // '('
  FuncDecl* fn = prog_->NewFunc();
  fn->name = name;
  fn->loc = loc;
  Type* fty = prog_->NewType(TypeKind::kFunc);
  fty->ret = ret;
  if (!At(Tok::kRParen)) {
    do {
      if (At(Tok::kKwVoid) && Ahead(1).kind == Tok::kRParen) {
        Advance();
        break;
      }
      if (At(Tok::kEllipsis)) {
        Advance();
        fty->varargs = true;
        break;
      }
      const Type* pt = ParseType();
      Symbol* p = prog_->NewSymbol();
      p->kind = SymKind::kParam;
      p->type = pt;
      p->param_index = static_cast<int>(fn->params.size());
      if (AtIdentLike()) {
        p->name = Cur().text;
        p->loc = Cur().loc;
        Advance();
      }
      fty->params.push_back(pt);
      fn->params.push_back(p);
    } while (Accept(Tok::kComma));
  }
  Expect(Tok::kRParen, "after parameter list");
  blocking_if_name_.clear();
  fn->attrs = ParseFuncAttrs();
  if (fn->attrs.blocking_if_param == -2) {
    fn->attrs.blocking_if_param = -1;
    for (size_t i = 0; i < fn->params.size(); ++i) {
      if (fn->params[i]->name == blocking_if_name_) {
        fn->attrs.blocking_if_param = static_cast<int>(i);
      }
    }
    if (fn->attrs.blocking_if_param < 0) {
      diags_->Error(loc, "blocking_if names unknown parameter '" + blocking_if_name_ + "'",
                    "parse");
    }
  }
  fn->type = fty;
  if (At(Tok::kLBrace)) {
    fn->body = ParseBlock(StmtKind::kBlock);
  } else {
    Expect(Tok::kSemi, "after function declaration");
  }
  // Every node of this function occupies the contiguous id ranges between
  // the ParseFuncOrGlobal marks and here (sema allocates no nodes).
  fn->expr_begin = func_expr_mark_;
  fn->expr_end = prog_->expr_count();
  fn->stmt_begin = func_stmt_mark_;
  fn->stmt_end = prog_->stmt_count();
  fn->decl_begin = func_decl_mark_;
  fn->decl_end = prog_->decl_count();
  prog_->funcs.push_back(fn);
}

Stmt* Parser::ParseBlock(StmtKind kind) {
  Stmt* block = prog_->NewStmt(kind, Cur().loc);
  Expect(Tok::kLBrace, "to open block");
  std::vector<Stmt*> body;
  while (!At(Tok::kRBrace) && !At(Tok::kEof)) {
    body.push_back(ParseStmt());
  }
  Expect(Tok::kRBrace, "to close block");
  block->body = prog_->MakeStmtList(body);
  return block;
}

Stmt* Parser::ParseDeclStmt() {
  SourceLoc loc = Cur().loc;
  const Type* base = ParseType();
  std::vector<Stmt*> decls;  // "int a, b;" -> kSeq of decls
  for (;;) {
    if (!AtIdentLike()) {
      diags_->Error(Cur().loc, "expected variable name", "parse");
      SyncToSemi();
      break;
    }
    VarDecl* d = prog_->NewVarDecl();
    SetName(d, Cur().text);
    d->loc = Cur().loc;
    Advance();
    d->type = ParseArraySuffix(base);
    if (Accept(Tok::kAssign)) {
      d->init = ParseAssign();
    }
    Stmt* s = prog_->NewStmt(StmtKind::kDecl, d->loc);
    s->decl = d;
    decls.push_back(s);
    if (!Accept(Tok::kComma)) {
      break;
    }
  }
  Expect(Tok::kSemi, "after declaration");
  if (decls.size() == 1) {
    return decls[0];
  }
  if (decls.empty()) {
    return prog_->NewStmt(StmtKind::kEmpty, loc);
  }
  Stmt* seq = prog_->NewStmt(StmtKind::kSeq, loc);
  seq->body = prog_->MakeStmtList(decls);
  return seq;
}

Stmt* Parser::ParseStmt() {
  SourceLoc loc = Cur().loc;
  switch (Cur().kind) {
    case Tok::kLBrace:
      return ParseBlock(StmtKind::kBlock);
    case Tok::kKwTrusted:
      Advance();
      return ParseBlock(StmtKind::kTrusted);
    case Tok::kKwDelayedFree:
      Advance();
      return ParseBlock(StmtKind::kDelayedFree);
    case Tok::kSemi: {
      Advance();
      return prog_->NewStmt(StmtKind::kEmpty, loc);
    }
    case Tok::kKwIf: {
      Advance();
      Stmt* s = prog_->NewStmt(StmtKind::kIf, loc);
      Expect(Tok::kLParen, "after 'if'");
      s->cond = ParseExpr();
      Expect(Tok::kRParen, "after if condition");
      s->then_stmt = ParseStmt();
      if (Accept(Tok::kKwElse)) {
        s->else_stmt = ParseStmt();
      }
      return s;
    }
    case Tok::kKwWhile: {
      Advance();
      Stmt* s = prog_->NewStmt(StmtKind::kWhile, loc);
      Expect(Tok::kLParen, "after 'while'");
      s->cond = ParseExpr();
      Expect(Tok::kRParen, "after while condition");
      s->then_stmt = ParseStmt();
      return s;
    }
    case Tok::kKwDo: {
      Advance();
      Stmt* s = prog_->NewStmt(StmtKind::kDoWhile, loc);
      s->then_stmt = ParseStmt();
      Expect(Tok::kKwWhile, "after do body");
      Expect(Tok::kLParen, "after 'while'");
      s->cond = ParseExpr();
      Expect(Tok::kRParen, "after do-while condition");
      Expect(Tok::kSemi, "after do-while");
      return s;
    }
    case Tok::kKwFor: {
      Advance();
      Stmt* s = prog_->NewStmt(StmtKind::kFor, loc);
      Expect(Tok::kLParen, "after 'for'");
      if (!At(Tok::kSemi)) {
        if (AtTypeStart()) {
          s->init = ParseDeclStmt();  // consumes ';'
        } else {
          Stmt* e = prog_->NewStmt(StmtKind::kExpr, Cur().loc);
          e->expr = ParseExpr();
          s->init = e;
          Expect(Tok::kSemi, "after for-init");
        }
      } else {
        Advance();
      }
      if (!At(Tok::kSemi)) {
        s->cond = ParseExpr();
      }
      Expect(Tok::kSemi, "after for-condition");
      if (!At(Tok::kRParen)) {
        s->step = ParseExpr();
      }
      Expect(Tok::kRParen, "after for-step");
      s->then_stmt = ParseStmt();
      return s;
    }
    case Tok::kKwReturn: {
      Advance();
      Stmt* s = prog_->NewStmt(StmtKind::kReturn, loc);
      if (!At(Tok::kSemi)) {
        s->expr = ParseExpr();
      }
      Expect(Tok::kSemi, "after return");
      return s;
    }
    case Tok::kKwBreak: {
      Advance();
      Expect(Tok::kSemi, "after break");
      return prog_->NewStmt(StmtKind::kBreak, loc);
    }
    case Tok::kKwContinue: {
      Advance();
      Expect(Tok::kSemi, "after continue");
      return prog_->NewStmt(StmtKind::kContinue, loc);
    }
    default: {
      if (AtTypeStart()) {
        return ParseDeclStmt();
      }
      Stmt* s = prog_->NewStmt(StmtKind::kExpr, loc);
      s->expr = ParseExpr();
      Expect(Tok::kSemi, "after expression");
      return s;
    }
  }
}

Expr* Parser::ParseExpr() { return ParseAssign(); }

Expr* Parser::ParseAssign() {
  Expr* lhs = ParseCond();
  BinOp op = BinOp::kNone;
  switch (Cur().kind) {
    case Tok::kAssign:
      op = BinOp::kNone;
      break;
    case Tok::kPlusEq:
      op = BinOp::kAdd;
      break;
    case Tok::kMinusEq:
      op = BinOp::kSub;
      break;
    case Tok::kStarEq:
      op = BinOp::kMul;
      break;
    case Tok::kSlashEq:
      op = BinOp::kDiv;
      break;
    case Tok::kPercentEq:
      op = BinOp::kRem;
      break;
    case Tok::kAmpEq:
      op = BinOp::kBitAnd;
      break;
    case Tok::kPipeEq:
      op = BinOp::kBitOr;
      break;
    case Tok::kCaretEq:
      op = BinOp::kBitXor;
      break;
    case Tok::kShlEq:
      op = BinOp::kShl;
      break;
    case Tok::kShrEq:
      op = BinOp::kShr;
      break;
    default:
      return lhs;
  }
  SourceLoc loc = Cur().loc;
  Advance();
  Expr* rhs = ParseAssign();
  Expr* e = prog_->NewExpr(ExprKind::kAssign, loc);
  e->a = lhs;
  e->b = rhs;
  e->assign_op = op;
  return e;
}

Expr* Parser::ParseCond() {
  Expr* cond = ParseBinary(1);
  if (!At(Tok::kQuestion)) {
    return cond;
  }
  SourceLoc loc = Cur().loc;
  Advance();
  Expr* e = prog_->NewExpr(ExprKind::kCond, loc);
  e->a = cond;
  e->b = ParseExpr();
  Expect(Tok::kColon, "in conditional expression");
  e->c = ParseCond();
  return e;
}

namespace {

// Binary operator precedence; higher binds tighter. 0 = not a binary op.
int BinPrec(Tok t) {
  switch (t) {
    case Tok::kPipePipe:
      return 1;
    case Tok::kAmpAmp:
      return 2;
    case Tok::kPipe:
      return 3;
    case Tok::kCaret:
      return 4;
    case Tok::kAmp:
      return 5;
    case Tok::kEqEq:
    case Tok::kBangEq:
      return 6;
    case Tok::kLess:
    case Tok::kGreater:
    case Tok::kLessEq:
    case Tok::kGreaterEq:
      return 7;
    case Tok::kShl:
    case Tok::kShr:
      return 8;
    case Tok::kPlus:
    case Tok::kMinus:
      return 9;
    case Tok::kStar:
    case Tok::kSlash:
    case Tok::kPercent:
      return 10;
    default:
      return 0;
  }
}

BinOp TokToBinOp(Tok t) {
  switch (t) {
    case Tok::kPipePipe:
      return BinOp::kLogOr;
    case Tok::kAmpAmp:
      return BinOp::kLogAnd;
    case Tok::kPipe:
      return BinOp::kBitOr;
    case Tok::kCaret:
      return BinOp::kBitXor;
    case Tok::kAmp:
      return BinOp::kBitAnd;
    case Tok::kEqEq:
      return BinOp::kEq;
    case Tok::kBangEq:
      return BinOp::kNe;
    case Tok::kLess:
      return BinOp::kLt;
    case Tok::kGreater:
      return BinOp::kGt;
    case Tok::kLessEq:
      return BinOp::kLe;
    case Tok::kGreaterEq:
      return BinOp::kGe;
    case Tok::kShl:
      return BinOp::kShl;
    case Tok::kShr:
      return BinOp::kShr;
    case Tok::kPlus:
      return BinOp::kAdd;
    case Tok::kMinus:
      return BinOp::kSub;
    case Tok::kStar:
      return BinOp::kMul;
    case Tok::kSlash:
      return BinOp::kDiv;
    case Tok::kPercent:
      return BinOp::kRem;
    default:
      return BinOp::kNone;
  }
}

}  // namespace

Expr* Parser::ParseBinary(int min_prec) {
  Expr* lhs = ParseUnary();
  for (;;) {
    int prec = BinPrec(Cur().kind);
    if (prec < min_prec || prec == 0) {
      return lhs;
    }
    BinOp op = TokToBinOp(Cur().kind);
    SourceLoc loc = Cur().loc;
    Advance();
    Expr* rhs = ParseBinary(prec + 1);
    Expr* e = prog_->NewExpr(ExprKind::kBinary, loc);
    e->bin_op = op;
    e->a = lhs;
    e->b = rhs;
    lhs = e;
  }
}

Expr* Parser::ParseUnary() {
  SourceLoc loc = Cur().loc;
  switch (Cur().kind) {
    case Tok::kMinus: {
      Advance();
      Expr* e = prog_->NewExpr(ExprKind::kUnary, loc);
      e->un_op = UnOp::kNeg;
      e->a = ParseUnary();
      return e;
    }
    case Tok::kBang: {
      Advance();
      Expr* e = prog_->NewExpr(ExprKind::kUnary, loc);
      e->un_op = UnOp::kLogNot;
      e->a = ParseUnary();
      return e;
    }
    case Tok::kTilde: {
      Advance();
      Expr* e = prog_->NewExpr(ExprKind::kUnary, loc);
      e->un_op = UnOp::kBitNot;
      e->a = ParseUnary();
      return e;
    }
    case Tok::kStar: {
      Advance();
      Expr* e = prog_->NewExpr(ExprKind::kDeref, loc);
      e->a = ParseUnary();
      return e;
    }
    case Tok::kAmp: {
      Advance();
      Expr* e = prog_->NewExpr(ExprKind::kAddrOf, loc);
      e->a = ParseUnary();
      return e;
    }
    case Tok::kPlusPlus:
    case Tok::kMinusMinus: {
      bool inc = At(Tok::kPlusPlus);
      Advance();
      Expr* e = prog_->NewExpr(ExprKind::kIncDec, loc);
      e->is_inc = inc;
      e->is_prefix = true;
      e->a = ParseUnary();
      return e;
    }
    case Tok::kKwSizeof: {
      Advance();
      Expr* e = prog_->NewExpr(ExprKind::kSizeof, loc);
      Expect(Tok::kLParen, "after sizeof");
      if (AtTypeStart()) {
        e->cast_type = ParseType();
      } else {
        e->a = ParseExpr();
      }
      Expect(Tok::kRParen, "after sizeof operand");
      return e;
    }
    case Tok::kLParen: {
      // Cast if '(' is followed by a type start.
      if (BinPrec(Ahead(1).kind) == 0 || Ahead(1).kind == Tok::kStar) {
        // fallthrough to the generic check below
      }
      if (Ahead(1).kind == Tok::kKwInt || Ahead(1).kind == Tok::kKwChar ||
          Ahead(1).kind == Tok::kKwVoid || Ahead(1).kind == Tok::kKwStruct ||
          Ahead(1).kind == Tok::kKwUnion || Ahead(1).kind == Tok::kKwConst ||
          (Ahead(1).kind == Tok::kIdent && prog_->typedefs.count(Ahead(1).text) > 0)) {
        Advance();  // '('
        Expr* e = prog_->NewExpr(ExprKind::kCast, loc);
        e->cast_type = ParseType();
        Expect(Tok::kRParen, "after cast type");
        e->a = ParseUnary();
        return e;
      }
      return ParsePostfix(ParsePrimary());
    }
    default:
      return ParsePostfix(ParsePrimary());
  }
}

Expr* Parser::ParsePostfix(Expr* base) {
  for (;;) {
    SourceLoc loc = Cur().loc;
    switch (Cur().kind) {
      case Tok::kLParen: {
        Advance();
        Expr* call = prog_->NewExpr(ExprKind::kCall, loc);
        call->a = base;
        if (!At(Tok::kRParen)) {
          std::vector<Expr*> args;
          do {
            args.push_back(ParseAssign());
          } while (Accept(Tok::kComma));
          call->args = prog_->MakeExprList(args);
        }
        Expect(Tok::kRParen, "after call arguments");
        base = call;
        break;
      }
      case Tok::kLBracket: {
        Advance();
        Expr* idx = prog_->NewExpr(ExprKind::kIndex, loc);
        idx->a = base;
        idx->b = ParseExpr();
        Expect(Tok::kRBracket, "after index");
        base = idx;
        break;
      }
      case Tok::kDot:
      case Tok::kArrow: {
        bool arrow = At(Tok::kArrow);
        Advance();
        Expr* mem = prog_->NewExpr(ExprKind::kMember, loc);
        mem->a = base;
        mem->is_arrow = arrow;
        if (AtIdentLike()) {
          SetStr(mem, Cur().text);
          Advance();
        } else {
          diags_->Error(Cur().loc, "expected member name", "parse");
        }
        base = mem;
        break;
      }
      case Tok::kPlusPlus:
      case Tok::kMinusMinus: {
        Expr* e = prog_->NewExpr(ExprKind::kIncDec, loc);
        e->is_inc = At(Tok::kPlusPlus);
        e->is_prefix = false;
        e->a = base;
        Advance();
        base = e;
        break;
      }
      default:
        return base;
    }
  }
}

Expr* Parser::ParsePrimary() {
  SourceLoc loc = Cur().loc;
  switch (Cur().kind) {
    case Tok::kIntLit: {
      Expr* e = prog_->NewExpr(ExprKind::kIntLit, loc);
      e->int_val = Cur().int_val;
      Advance();
      return e;
    }
    case Tok::kCharLit: {
      Expr* e = prog_->NewExpr(ExprKind::kIntLit, loc);
      e->int_val = Cur().int_val;
      Advance();
      return e;
    }
    case Tok::kStrLit: {
      Expr* e = prog_->NewExpr(ExprKind::kStrLit, loc);
      SetStr(e, Cur().text);
      Advance();
      return e;
    }
    case Tok::kKwNull: {
      Advance();
      return prog_->NewExpr(ExprKind::kNull, loc);
    }
    case Tok::kIdent: {
      Expr* e = prog_->NewExpr(ExprKind::kIdent, loc);
      SetStr(e, Cur().text);
      Advance();
      return e;
    }
    case Tok::kLParen: {
      Advance();
      Expr* e = ParseExpr();
      Expect(Tok::kRParen, "after parenthesized expression");
      return e;
    }
    default: {
      diags_->Error(loc, std::string("expected expression, found ") + TokName(Cur().kind),
                    "parse");
      Advance();
      return prog_->NewExpr(ExprKind::kIntLit, loc);
    }
  }
}

bool Parser::EvalConstInt(Expr* e, int64_t* out) const {
  if (e == nullptr) {
    return false;
  }
  switch (e->kind) {
    case ExprKind::kIntLit:
      *out = e->int_val;
      return true;
    case ExprKind::kIdent: {
      auto it = prog_->enum_consts.find(e->str_val);
      if (it != prog_->enum_consts.end()) {
        *out = it->second;
        return true;
      }
      return false;
    }
    case ExprKind::kUnary: {
      int64_t v = 0;
      if (!EvalConstInt(e->a, &v)) {
        return false;
      }
      switch (e->un_op) {
        case UnOp::kNeg:
          *out = -v;
          return true;
        case UnOp::kLogNot:
          *out = v == 0 ? 1 : 0;
          return true;
        case UnOp::kBitNot:
          *out = ~v;
          return true;
      }
      return false;
    }
    case ExprKind::kBinary: {
      int64_t a = 0;
      int64_t b = 0;
      if (!EvalConstInt(e->a, &a) || !EvalConstInt(e->b, &b)) {
        return false;
      }
      switch (e->bin_op) {
        case BinOp::kAdd:
          *out = a + b;
          return true;
        case BinOp::kSub:
          *out = a - b;
          return true;
        case BinOp::kMul:
          *out = a * b;
          return true;
        case BinOp::kDiv:
          if (b == 0) {
            return false;
          }
          *out = a / b;
          return true;
        case BinOp::kShl:
          *out = a << b;
          return true;
        case BinOp::kShr:
          *out = a >> b;
          return true;
        case BinOp::kBitOr:
          *out = a | b;
          return true;
        case BinOp::kBitAnd:
          *out = a & b;
          return true;
        default:
          return false;
      }
    }
    default:
      return false;
  }
}

}  // namespace ivy
