// Abstract syntax tree for Mini-C.
//
// Nodes are "fat" tagged structs allocated from arenas owned by Program. The
// tree survives for the whole pipeline (sema annotates it in place; lowering,
// the points-to analysis and the future analyses all read it).
#ifndef SRC_MC_AST_H_
#define SRC_MC_AST_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/mc/types.h"
#include "src/support/source.h"

namespace ivy {

struct FuncDecl;
struct Stmt;
struct Symbol;
struct VarDecl;

enum class ExprKind {
  kIntLit,   // int_val (type int or char)
  kStrLit,   // str_val; type char* nullterm
  kNull,     // null pointer constant
  kIdent,    // str_val = name; sym set by sema
  kUnary,    // un_op a
  kBinary,   // a bin_op b
  kAssign,   // a = b, or compound a op= b (assign_op)
  kCond,     // a ? b : c
  kCall,     // a(args...); a is kIdent for direct calls or any fn-ptr expr
  kIndex,    // a[b]
  kMember,   // a.field / a->field (is_arrow)
  kDeref,    // *a
  kAddrOf,   // &a
  kCast,     // (cast_type) a
  kSizeof,   // sizeof(type) or sizeof(expr); folded to int_val by sema
  kIncDec,   // ++/-- pre/post (is_inc, is_prefix)
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kRem,
  kShl, kShr,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kBitAnd, kBitOr, kBitXor,
  kLogAnd, kLogOr,
  kNone,  // used as assign_op for plain '='
};

enum class UnOp { kNeg, kLogNot, kBitNot };

struct Expr {
  ExprKind kind = ExprKind::kIntLit;
  SourceLoc loc;
  const Type* type = nullptr;  // set by sema

  int64_t int_val = 0;
  std::string str_val;  // identifier spelling, string value, or member name
  Expr* a = nullptr;
  Expr* b = nullptr;
  Expr* c = nullptr;
  std::vector<Expr*> args;
  BinOp bin_op = BinOp::kNone;
  BinOp assign_op = BinOp::kNone;
  UnOp un_op = UnOp::kNeg;
  bool is_arrow = false;
  bool is_inc = false;
  bool is_prefix = false;
  const Type* cast_type = nullptr;  // kCast / kSizeof(type)

  // Sema results.
  Symbol* sym = nullptr;                  // kIdent resolution
  const RecordField* field = nullptr;     // kMember resolution
  RecordDecl* field_record = nullptr;     // record containing `field`
  bool in_trusted = false;                // lexically inside trusted code
  bool is_const = false;                  // compile-time constant (int_val valid)

  bool IsNullConst() const {
    return kind == ExprKind::kNull || (kind == ExprKind::kIntLit && int_val == 0);
  }
};

enum class StmtKind {
  kExpr,
  kDecl,     // local variable declaration
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kBlock,
  kSeq,          // statement sequence without its own scope (multi-declarators)
  kTrusted,      // trusted { ... }: Deputy emits no checks inside
  kDelayedFree,  // delayed_free { ... }: CCount defers frees to scope end
  kEmpty,
};

// A variable declaration (local or global).
struct VarDecl {
  std::string name;
  const Type* type = nullptr;
  Expr* init = nullptr;
  Symbol* sym = nullptr;
  SourceLoc loc;
  bool is_global = false;
};

struct Stmt {
  StmtKind kind = StmtKind::kEmpty;
  SourceLoc loc;
  Expr* expr = nullptr;         // kExpr, kReturn (nullable), conditions
  VarDecl* decl = nullptr;      // kDecl
  Stmt* init = nullptr;         // kFor
  Expr* cond = nullptr;         // kIf/kWhile/kDoWhile/kFor (kFor may be null)
  Expr* step = nullptr;         // kFor
  Stmt* then_stmt = nullptr;    // kIf / loop body
  Stmt* else_stmt = nullptr;    // kIf
  std::vector<Stmt*> body;      // kBlock/kTrusted/kDelayedFree
};

enum class SymKind { kGlobal, kLocal, kParam, kFunc, kEnumConst, kTypedefName };

// A named entity. Sema interns one Symbol per declaration.
struct Symbol {
  std::string name;
  SymKind kind = SymKind::kLocal;
  const Type* type = nullptr;
  FuncDecl* func = nullptr;  // kFunc
  VarDecl* var = nullptr;    // kGlobal / kLocal / kParam
  int64_t enum_value = 0;    // kEnumConst
  int param_index = -1;      // kParam
  SourceLoc loc;
  bool address_taken = false;

  // Lowering results.
  int64_t frame_offset = -1;   // locals/params: offset in the VM stack frame
  int64_t global_addr = 0;     // globals: absolute address in VM memory
  int local_id = -1;           // dense per-function numbering (analysis cells)
};

// Function attributes (BlockStop / ErrCheck / trust annotations, §2.3, §3.1).
struct FuncAttrs {
  bool blocking = false;            // may sleep unconditionally
  int blocking_if_param = -1;       // blocks iff this param has GFP_WAIT set
  bool noblock = false;             // carries the run-time "not atomic" check
  bool interrupt_handler = false;   // entered with interrupts disabled
  bool trusted = false;             // whole function trusted (E1 accounting)
  std::vector<int64_t> errcodes;    // error codes this function may return

  // Cross-module link facts. Never produced by the parser: these are set by
  // AnnoDb::ApplyAttributes' import path (src/annodb/annodb.h) from another
  // module's exported summaries, so a module can analyze calls into — and
  // entries from — the rest of a linked corpus. See docs/ARCHITECTURE.md
  // "Cross-module linking".
  bool returns_error = false;       // err-returning in its defining module
  bool entered_atomic = false;      // some other module may call this atomically
  bool entered_in_irq = false;      // reachable from another module's irq entry
  bool cross_recursive = false;     // on a cross-module call cycle
  int64_t stack_below = -1;         // worst-case stack depth of the callee subtree
  std::string block_witness;        // definer's witness for an imported may-block bit
};

struct FuncDecl {
  std::string name;
  const Type* type = nullptr;  // kFunc type
  std::vector<Symbol*> params;
  Stmt* body = nullptr;  // null for extern declarations / builtins
  FuncAttrs attrs;
  SourceLoc loc;
  bool is_builtin = false;
  int builtin_id = -1;  // index into the VM builtin table
  int func_id = -1;     // dense program-wide id
  // Set by lowering: total bytes of locals + params (StackCheck input).
  int64_t frame_size = 0;
};

// A whole Mini-C program: arenas plus top-level declarations. Created by the
// Parser, completed by Sema, then read-only.
class Program {
 public:
  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  Expr* NewExpr(ExprKind kind, SourceLoc loc);
  Stmt* NewStmt(StmtKind kind, SourceLoc loc);
  Type* NewType(TypeKind kind);
  VarDecl* NewVarDecl();
  RecordDecl* NewRecord();
  FuncDecl* NewFunc();
  Symbol* NewSymbol();

  // Canonical primitive types.
  const Type* IntType();
  const Type* CharType();
  const Type* VoidType();
  // A fresh pointer type (annotations make pointers non-internable).
  Type* PtrTo(const Type* pointee);

  std::vector<RecordDecl*> records;
  std::vector<FuncDecl*> funcs;
  std::vector<VarDecl*> globals;
  // Enum constants and typedefs, for lookup in sema and the cast parser.
  std::unordered_map<std::string, int64_t> enum_consts;
  std::unordered_map<std::string, const Type*> typedefs;

  FuncDecl* FindFunc(const std::string& name) const;
  RecordDecl* FindRecord(const std::string& name) const;

 private:
  template <typename T>
  T* Alloc(std::vector<std::unique_ptr<T>>* pool) {
    pool->push_back(std::make_unique<T>());
    return pool->back().get();
  }

  std::vector<std::unique_ptr<Expr>> expr_pool_;
  std::vector<std::unique_ptr<Stmt>> stmt_pool_;
  std::vector<std::unique_ptr<Type>> type_pool_;
  std::vector<std::unique_ptr<VarDecl>> var_pool_;
  std::vector<std::unique_ptr<RecordDecl>> record_pool_;
  std::vector<std::unique_ptr<FuncDecl>> func_pool_;
  std::vector<std::unique_ptr<Symbol>> sym_pool_;
  const Type* int_type_ = nullptr;
  const Type* char_type_ = nullptr;
  const Type* void_type_ = nullptr;
};

}  // namespace ivy

#endif  // SRC_MC_AST_H_
