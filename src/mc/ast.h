// Abstract syntax tree for Mini-C.
//
// Nodes are "fat" tagged structs stored in per-module arena slabs owned by
// Program (src/mc/arena.h). Every Expr/Stmt/VarDecl carries its dense slab
// index (`id`), assigned in parse order: consumers traverse via the embedded
// pointers as before, while fingerprinting and the span machinery iterate
// the slabs linearly through the typed ExprId/StmtId/DeclId handles. The
// tree survives for the whole pipeline (sema annotates it in place; lowering,
// the points-to analysis and the analyses all read it). Nodes are trivially
// destructible — identifier spellings are interned string_views into arena
// bytes and child lists are arena arrays — so an abandoned (error-path)
// parse frees completely when the Program drops its arena.
#ifndef SRC_MC_AST_H_
#define SRC_MC_AST_H_

#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "src/mc/arena.h"
#include "src/mc/types.h"
#include "src/support/source.h"

namespace ivy {

struct FuncDecl;
struct Stmt;
struct Symbol;
struct VarDecl;

enum class ExprKind {
  kIntLit,   // int_val (type int or char)
  kStrLit,   // str_val; type char* nullterm
  kNull,     // null pointer constant
  kIdent,    // str_val = name; sym set by sema
  kUnary,    // un_op a
  kBinary,   // a bin_op b
  kAssign,   // a = b, or compound a op= b (assign_op)
  kCond,     // a ? b : c
  kCall,     // a(args...); a is kIdent for direct calls or any fn-ptr expr
  kIndex,    // a[b]
  kMember,   // a.field / a->field (is_arrow)
  kDeref,    // *a
  kAddrOf,   // &a
  kCast,     // (cast_type) a
  kSizeof,   // sizeof(type) or sizeof(expr); folded to int_val by sema
  kIncDec,   // ++/-- pre/post (is_inc, is_prefix)
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kRem,
  kShl, kShr,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kBitAnd, kBitOr, kBitXor,
  kLogAnd, kLogOr,
  kNone,  // used as assign_op for plain '='
};

enum class UnOp { kNeg, kLogNot, kBitNot };

// Arena-allocated child list: one bump allocation, no destructor. Iterates
// like the std::vector it replaced.
struct ExprList {
  Expr** items = nullptr;
  uint32_t count = 0;
  uint32_t size() const { return count; }
  bool empty() const { return count == 0; }
  Expr* operator[](size_t i) const { return items[i]; }
  Expr* back() const { return items[count - 1]; }
  Expr* const* begin() const { return items; }
  Expr* const* end() const { return items + count; }
};

struct StmtList {
  Stmt** items = nullptr;
  uint32_t count = 0;
  uint32_t size() const { return count; }
  bool empty() const { return count == 0; }
  Stmt* operator[](size_t i) const { return items[i]; }
  Stmt* back() const { return items[count - 1]; }
  Stmt* const* begin() const { return items; }
  Stmt* const* end() const { return items + count; }
};

struct Expr {
  ExprKind kind = ExprKind::kIntLit;
  uint32_t id = kNoNode;   // own index in the Expr slab (ExprId{id})
  SourceLoc loc;
  const Type* type = nullptr;  // set by sema

  int64_t int_val = 0;
  // Identifier spelling, string value, or member name: a view into the
  // module's interned string bytes, plus the interner id whose content hash
  // fingerprinting mixes in O(1).
  std::string_view str_val;
  uint32_t str_id = kNoStr;
  Expr* a = nullptr;
  Expr* b = nullptr;
  Expr* c = nullptr;
  ExprList args;
  BinOp bin_op = BinOp::kNone;
  BinOp assign_op = BinOp::kNone;
  UnOp un_op = UnOp::kNeg;
  bool is_arrow = false;
  bool is_inc = false;
  bool is_prefix = false;
  // Annotation / const-evaluated subtree: identifiers here are not "name
  // references" for dirty-bit purposes (parity with the old recursive
  // fingerprint walk, which skipped these subtrees when collecting refs).
  bool no_refs = false;
  const Type* cast_type = nullptr;  // kCast / kSizeof(type)

  // Sema results.
  Symbol* sym = nullptr;                  // kIdent resolution
  const RecordField* field = nullptr;     // kMember resolution
  RecordDecl* field_record = nullptr;     // record containing `field`
  bool in_trusted = false;                // lexically inside trusted code
  bool is_const = false;                  // compile-time constant (int_val valid)

  bool IsNullConst() const {
    return kind == ExprKind::kNull || (kind == ExprKind::kIntLit && int_val == 0);
  }
};

enum class StmtKind {
  kExpr,
  kDecl,     // local variable declaration
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kBlock,
  kSeq,          // statement sequence without its own scope (multi-declarators)
  kTrusted,      // trusted { ... }: Deputy emits no checks inside
  kDelayedFree,  // delayed_free { ... }: CCount defers frees to scope end
  kEmpty,
};

// A variable declaration (local or global).
struct VarDecl {
  std::string_view name;       // interned
  uint32_t name_id = kNoStr;
  uint32_t id = kNoNode;       // own index in the VarDecl slab (DeclId{id})
  const Type* type = nullptr;
  Expr* init = nullptr;
  Symbol* sym = nullptr;
  SourceLoc loc;
  bool is_global = false;
};

struct Stmt {
  StmtKind kind = StmtKind::kEmpty;
  uint32_t id = kNoNode;        // own index in the Stmt slab (StmtId{id})
  SourceLoc loc;
  Expr* expr = nullptr;         // kExpr, kReturn (nullable), conditions
  VarDecl* decl = nullptr;      // kDecl
  Stmt* init = nullptr;         // kFor
  Expr* cond = nullptr;         // kIf/kWhile/kDoWhile/kFor (kFor may be null)
  Expr* step = nullptr;         // kFor
  Stmt* then_stmt = nullptr;    // kIf / loop body
  Stmt* else_stmt = nullptr;    // kIf
  StmtList body;                // kBlock/kTrusted/kDelayedFree
};

// Arena teardown is bulk chunk frees; nothing here may own heap memory.
static_assert(std::is_trivially_destructible_v<Expr>,
              "Expr must stay trivially destructible (arena-allocated)");
static_assert(std::is_trivially_destructible_v<Stmt>,
              "Stmt must stay trivially destructible (arena-allocated)");
static_assert(std::is_trivially_destructible_v<VarDecl>,
              "VarDecl must stay trivially destructible (arena-allocated)");

enum class SymKind { kGlobal, kLocal, kParam, kFunc, kEnumConst, kTypedefName };

// A named entity. Sema interns one Symbol per declaration.
struct Symbol {
  std::string name;
  SymKind kind = SymKind::kLocal;
  const Type* type = nullptr;
  FuncDecl* func = nullptr;  // kFunc
  VarDecl* var = nullptr;    // kGlobal / kLocal / kParam
  int64_t enum_value = 0;    // kEnumConst
  int param_index = -1;      // kParam
  SourceLoc loc;
  bool address_taken = false;

  // Lowering results.
  int64_t frame_offset = -1;   // locals/params: offset in the VM stack frame
  int64_t global_addr = 0;     // globals: absolute address in VM memory
  int local_id = -1;           // dense per-function numbering (analysis cells)
};

// Function attributes (BlockStop / ErrCheck / trust annotations, §2.3, §3.1).
struct FuncAttrs {
  bool blocking = false;            // may sleep unconditionally
  int blocking_if_param = -1;       // blocks iff this param has GFP_WAIT set
  bool noblock = false;             // carries the run-time "not atomic" check
  bool interrupt_handler = false;   // entered with interrupts disabled
  bool trusted = false;             // whole function trusted (E1 accounting)
  std::vector<int64_t> errcodes;    // error codes this function may return

  // Cross-module link facts. Never produced by the parser: these are set by
  // AnnoDb::ApplyAttributes' import path (src/annodb/annodb.h) from another
  // module's exported summaries, so a module can analyze calls into — and
  // entries from — the rest of a linked corpus. See docs/ARCHITECTURE.md
  // "Cross-module linking".
  bool returns_error = false;       // err-returning in its defining module
  bool entered_atomic = false;      // some other module may call this atomically
  bool entered_in_irq = false;      // reachable from another module's irq entry
  bool cross_recursive = false;     // on a cross-module call cycle
  int64_t stack_below = -1;         // worst-case stack depth of the callee subtree
  std::string block_witness;        // definer's witness for an imported may-block bit
};

struct FuncDecl {
  std::string name;
  const Type* type = nullptr;  // kFunc type
  std::vector<Symbol*> params;
  Stmt* body = nullptr;  // null for extern declarations / builtins
  FuncAttrs attrs;
  SourceLoc loc;
  bool is_builtin = false;
  int builtin_id = -1;  // index into the VM builtin table
  int func_id = -1;     // dense program-wide id
  // Set by lowering: total bytes of locals + params (StackCheck input).
  int64_t frame_size = 0;

  // Slab span: every Expr/Stmt/VarDecl of this function's definition lives
  // in the half-open id ranges below (parse allocates function bodies
  // contiguously; sema never allocates nodes). The span is the unit the
  // linear fingerprint walks, and serializes as six integers.
  uint32_t expr_begin = 0, expr_end = 0;
  uint32_t stmt_begin = 0, stmt_end = 0;
  uint32_t decl_begin = 0, decl_end = 0;
};

// Node + list + string storage for one module's AST. Dropping it frees the
// whole tree in O(chunks); see src/mc/arena.h for the layout.
struct AstArena {
  explicit AstArena(AstAllocMode m)
      : mode(m), bytes(m), exprs(m), stmts(m), decls(m), interner(m, &bytes) {}
  AstAllocMode mode;
  BumpArena bytes;        // child lists + interned string bytes
  NodeSlab<Expr> exprs;
  NodeSlab<Stmt> stmts;
  NodeSlab<VarDecl> decls;
  StringInterner interner;

  size_t TotalBytes() const {
    return bytes.reserved_bytes() + exprs.bytes() + stmts.bytes() +
           decls.bytes();
  }
};

// A whole Mini-C program: arena plus top-level declarations. Created by the
// Parser, completed by Sema, then read-only.
class Program {
 public:
  explicit Program(AstAllocMode mode = AstAllocMode::kArena)
      : arena_(std::make_unique<AstArena>(mode)) {}
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  // Swaps the allocation strategy. Only legal before anything is allocated
  // (the pipeline calls it first thing when ToolConfig::heap_ast is set).
  void SetAllocMode(AstAllocMode mode) {
    arena_ = std::make_unique<AstArena>(mode);
  }
  AstAllocMode alloc_mode() const { return arena_->mode; }

  Expr* NewExpr(ExprKind kind, SourceLoc loc);
  Stmt* NewStmt(StmtKind kind, SourceLoc loc);
  Type* NewType(TypeKind kind);
  VarDecl* NewVarDecl();
  RecordDecl* NewRecord();
  FuncDecl* NewFunc();
  Symbol* NewSymbol();

  // Index access: id <-> node. Ids are dense, assigned in parse order.
  Expr* ExprAt(ExprId id) { return arena_->exprs.At(id.v); }
  const Expr* ExprAt(ExprId id) const { return arena_->exprs.At(id.v); }
  Stmt* StmtAt(StmtId id) { return arena_->stmts.At(id.v); }
  const Stmt* StmtAt(StmtId id) const { return arena_->stmts.At(id.v); }
  VarDecl* DeclAt(DeclId id) { return arena_->decls.At(id.v); }
  const VarDecl* DeclAt(DeclId id) const { return arena_->decls.At(id.v); }
  uint32_t expr_count() const { return arena_->exprs.size(); }
  uint32_t stmt_count() const { return arena_->stmts.size(); }
  uint32_t decl_count() const { return arena_->decls.size(); }

  // String interning. StrHash is the cached content hash fingerprints mix.
  StrRef Intern(std::string_view s) { return arena_->interner.Intern(s); }
  uint64_t StrHash(uint32_t str_id) const {
    return arena_->interner.Hash(str_id);
  }
  const StringInterner& interner() const { return arena_->interner; }
  void SeedInterner(std::shared_ptr<const InternSnapshot> base) {
    arena_->interner.Seed(std::move(base));
  }

  // Copies a scratch vector into an arena-owned array.
  ExprList MakeExprList(const std::vector<Expr*>& v);
  StmtList MakeStmtList(const std::vector<Stmt*>& v);

  // Marks every Expr allocated since `begin` as an annotation/const-eval
  // node (excluded from reference collection; see Expr::no_refs).
  void MarkExprsNoRefs(uint32_t begin);

  const AstArena& arena() const { return *arena_; }

  // Canonical primitive types.
  const Type* IntType();
  const Type* CharType();
  const Type* VoidType();
  // A fresh pointer type (annotations make pointers non-internable).
  Type* PtrTo(const Type* pointee);

  std::vector<RecordDecl*> records;
  std::vector<FuncDecl*> funcs;
  std::vector<VarDecl*> globals;
  // Enum constants and typedefs, for lookup in sema and the cast parser.
  // Keyed by interned views (stable for the Program's lifetime), so lookups
  // from Expr::str_val need no temporary std::string.
  std::unordered_map<std::string_view, int64_t> enum_consts;
  std::unordered_map<std::string_view, const Type*> typedefs;

  FuncDecl* FindFunc(std::string_view name) const;
  RecordDecl* FindRecord(std::string_view name) const;

 private:
  template <typename T>
  T* Alloc(std::vector<std::unique_ptr<T>>* pool) {
    pool->push_back(std::make_unique<T>());
    return pool->back().get();
  }

  std::unique_ptr<AstArena> arena_;
  std::vector<std::unique_ptr<Type>> type_pool_;
  std::vector<std::unique_ptr<RecordDecl>> record_pool_;
  std::vector<std::unique_ptr<FuncDecl>> func_pool_;
  std::vector<std::unique_ptr<Symbol>> sym_pool_;
  const Type* int_type_ = nullptr;
  const Type* char_type_ = nullptr;
  const Type* void_type_ = nullptr;
};

}  // namespace ivy

#endif  // SRC_MC_AST_H_
