// Hand-written lexer for Mini-C. Produces the full token stream for a file in
// one pass; the parser indexes into it (cheap arbitrary lookahead, which the
// cast/expression ambiguity needs).
#ifndef SRC_MC_LEXER_H_
#define SRC_MC_LEXER_H_

#include <vector>

#include "src/mc/token.h"
#include "src/support/diag.h"

namespace ivy {

class Lexer {
 public:
  // Lexes file `file_id` registered in `sm`. Errors (bad characters,
  // unterminated literals) are reported to `diags`.
  Lexer(const SourceManager& sm, int32_t file_id, DiagEngine* diags);

  // Runs the lexer and returns all tokens, ending with kEof.
  std::vector<Token> Lex();

 private:
  char Peek(int ahead = 0) const;
  char Advance();
  bool Match(char c);
  SourceLoc Here() const;
  void LexLineComment();
  void LexBlockComment();
  Token LexNumber();
  Token LexIdentOrKeyword();
  Token LexCharLit();
  Token LexStrLit();
  int64_t LexEscape();

  const std::string& text_;
  int32_t file_id_;
  DiagEngine* diags_;
  size_t pos_ = 0;
  int32_t line_ = 1;
  int32_t col_ = 1;
};

}  // namespace ivy

#endif  // SRC_MC_LEXER_H_
