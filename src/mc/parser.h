// Recursive-descent parser for Mini-C.
//
// The parser builds the AST and raw (unresolved) types, including Deputy
// annotation expressions, which Sema later resolves in the right scope
// (sibling record fields for field annotations, enclosing function scope for
// local/parameter annotations).
#ifndef SRC_MC_PARSER_H_
#define SRC_MC_PARSER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "src/mc/ast.h"
#include "src/mc/token.h"
#include "src/support/diag.h"

namespace ivy {

class Parser {
 public:
  // Parses tokens into `prog`, appending to any declarations already present
  // (multiple files are parsed into one Program, mirroring CIL's
  // whole-program merge of the kernel).
  Parser(Program* prog, std::vector<Token> tokens, DiagEngine* diags);

  // Borrowing variant: parses a token stream owned elsewhere without
  // copying it. `tokens` must outlive the parser — this is what lets a
  // corpus session share one lexed prelude across every module compilation
  // (see FrontendCache in src/tool/pipeline.h).
  Parser(Program* prog, const std::vector<Token>* tokens, DiagEngine* diags);

  // Self-referential when constructed by value (tokens_ points at
  // owned_tokens_), so copying or moving would dangle.
  Parser(const Parser&) = delete;
  Parser& operator=(const Parser&) = delete;

  // Parses the whole token stream. Errors are reported to the DiagEngine;
  // parsing continues after errors where possible (statement-level sync).
  void ParseTranslationUnit();

 private:
  const Token& Cur() const { return (*tokens_)[pos_]; }
  const Token& Ahead(int n) const;
  bool At(Tok t) const { return Cur().kind == t; }
  // Annotation keywords (count, opt, bound, ...) double as ordinary
  // identifiers in name positions, so kernel code like `rq.count` parses.
  bool AtIdentLike() const;
  void Advance();
  bool Accept(Tok t);
  bool Expect(Tok t, const char* context);
  void SyncToSemi();

  // Types.
  bool AtTypeStart() const;
  const Type* ParseType();
  const Type* ParseBaseType();
  void ParsePtrAnnots(PtrAnnot* annot);

  // Top-level declarations.
  void ParseTopLevel();
  void ParseTypedef();
  void ParseRecord(bool is_union);
  RecordDecl* ParseRecordBody(RecordDecl* rec, RecordDecl* parent_struct);
  void ParseEnum();
  void ParseFuncOrGlobal();
  void ParseFuncRest(const Type* ret, const std::string& name, SourceLoc loc);
  FuncAttrs ParseFuncAttrs();
  const Type* ParseArraySuffix(const Type* base);

  // Statements.
  Stmt* ParseStmt();
  Stmt* ParseBlock(StmtKind kind);
  Stmt* ParseDeclStmt();

  // Expressions.
  Expr* ParseExpr();
  Expr* ParseAssign();
  Expr* ParseCond();
  Expr* ParseBinary(int min_prec);
  Expr* ParseUnary();
  Expr* ParsePostfix(Expr* base);
  Expr* ParsePrimary();
  bool EvalConstInt(Expr* e, int64_t* out) const;

  // Interns `s` into the program arena and stores the view + interner id on
  // the node.
  void SetStr(Expr* e, const std::string& s) {
    StrRef r = prog_->Intern(s);
    e->str_val = r.view;
    e->str_id = r.id;
  }
  void SetName(VarDecl* d, const std::string& s) {
    StrRef r = prog_->Intern(s);
    d->name = r.view;
    d->name_id = r.id;
  }
  // Parses an annotation / const-evaluated expression: everything allocated
  // by `body()` is marked Expr::no_refs (not a name reference for dirty-bit
  // purposes; see src/mc/ast.h).
  template <typename F>
  Expr* ParseNoRefExpr(F&& body) {
    uint32_t mark = prog_->expr_count();
    Expr* e = body();
    prog_->MarkExprsNoRefs(mark);
    return e;
  }

  Program* prog_;
  std::vector<Token> owned_tokens_;           // set by the by-value ctor
  const std::vector<Token>* tokens_ = nullptr;  // always valid; may borrow
  DiagEngine* diags_;
  size_t pos_ = 0;
  int anon_union_count_ = 0;
  // Slab-span marks taken at ParseFuncOrGlobal entry (before the return type,
  // whose annotation expressions belong to the function). ParseFuncRest turns
  // them into the FuncDecl's {expr,stmt,decl}_{begin,end} ranges.
  uint32_t func_expr_mark_ = 0;
  uint32_t func_stmt_mark_ = 0;
  uint32_t func_decl_mark_ = 0;
  // Parameter name seen in the last blocking_if(...) attribute; resolved to a
  // parameter index once the full parameter list is known.
  std::string blocking_if_name_;
};

}  // namespace ivy

#endif  // SRC_MC_PARSER_H_
