// Mini-C type representations, including Deputy's dependent pointer
// annotations (§2.1 of the paper).
//
// A pointer type carries a `PtrAnnot` describing its bounds discipline:
//   T*                 -- safe singleton pointer (count(1)), non-null
//   T* count(e)        -- points to an array of `e` elements; `e` is an
//                         expression over in-scope variables / sibling fields
//   T* bound(lo, hi)   -- explicit bounds expressions
//   T* nullterm        -- null-terminated sequence (strings)
//   T* opt             -- may be null (null checks inserted at use)
//   T* trusted         -- unchecked; assumed correct (counted by E1 stats)
// Union members may carry `when(e)` guards; accesses check the guard.
#ifndef SRC_MC_TYPES_H_
#define SRC_MC_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/source.h"

namespace ivy {

struct Expr;
struct Type;

enum class TypeKind {
  kVoid,
  kInt,   // 64-bit signed
  kChar,  // 8-bit
  kPointer,
  kArray,
  kRecord,  // struct or union
  kFunc,
  kError,
};

enum class BoundsKind {
  kSingle,    // exactly one element (default safe pointer)
  kCount,     // count(e) elements
  kBound,     // bound(lo, hi)
  kNullterm,  // null-terminated
};

// Deputy annotation attached to a pointer type.
struct PtrAnnot {
  BoundsKind bounds = BoundsKind::kSingle;
  Expr* count = nullptr;        // for kCount
  Expr* lo = nullptr;           // for kBound
  Expr* hi = nullptr;           // for kBound
  bool opt = false;             // may be null
  bool trusted = false;         // unchecked pointer
};

// A field of a struct or union.
struct RecordField {
  std::string name;
  const Type* type = nullptr;
  Expr* when = nullptr;  // union-member guard, scoped to the enclosing struct
  int64_t offset = 0;    // byte offset, set by sema layout
  int index = 0;
  SourceLoc loc;
};

// A struct or union declaration; doubles as the canonical record type.
struct RecordDecl {
  std::string name;  // empty for inline (anonymous) unions
  bool is_union = false;
  bool complete = false;
  std::vector<RecordField> fields;
  int64_t size = 0;
  int64_t align = 1;
  SourceLoc loc;
  // For inline unions: the struct whose fields are in scope for `when`.
  RecordDecl* parent_struct = nullptr;
  // Dense id assigned by sema; used as the CCount runtime type id.
  int type_id = -1;

  const RecordField* FindField(std::string_view field_name) const {
    for (const RecordField& f : fields) {
      if (f.name == field_name) {
        return &f;
      }
    }
    return nullptr;
  }
};

// A Mini-C type. Fat node: only the members for `kind` are meaningful.
// Types are arena-allocated by Program and immutable after sema.
struct Type {
  TypeKind kind = TypeKind::kError;
  // kPointer:
  const Type* pointee = nullptr;
  PtrAnnot annot;
  // kArray:
  const Type* elem = nullptr;
  int64_t array_len = 0;
  // kRecord:
  RecordDecl* record = nullptr;
  // kFunc:
  const Type* ret = nullptr;
  std::vector<const Type*> params;
  bool varargs = false;  // printk-style trailing "..."

  bool IsVoid() const { return kind == TypeKind::kVoid; }
  bool IsChar() const { return kind == TypeKind::kChar; }
  bool IsInteger() const { return kind == TypeKind::kInt || kind == TypeKind::kChar; }
  bool IsPointer() const { return kind == TypeKind::kPointer; }
  bool IsArray() const { return kind == TypeKind::kArray; }
  bool IsRecord() const { return kind == TypeKind::kRecord; }
  bool IsFunc() const { return kind == TypeKind::kFunc; }
  bool IsError() const { return kind == TypeKind::kError; }
  bool IsFuncPointer() const { return IsPointer() && pointee != nullptr && pointee->IsFunc(); }
};

// Byte size of a value of type `t`. Records must be laid out already.
int64_t TypeSize(const Type* t);

// Alignment requirement of `t` (1 for char, 8 for int/pointer).
int64_t TypeAlign(const Type* t);

// Structural "same type" check used for assignment compatibility and cast
// legality. Ignores Deputy annotations (they are checked, not trusted).
bool SameType(const Type* a, const Type* b);

// Renders a type for diagnostics, e.g. "char * count(n)".
std::string TypeToString(const Type* t);

}  // namespace ivy

#endif  // SRC_MC_TYPES_H_
