#include "src/mc/lexer.h"

#include <cctype>
#include <unordered_map>

namespace ivy {

const char* TokName(Tok t) {
  switch (t) {
    case Tok::kEof:
      return "end of file";
    case Tok::kIdent:
      return "identifier";
    case Tok::kIntLit:
      return "integer literal";
    case Tok::kCharLit:
      return "char literal";
    case Tok::kStrLit:
      return "string literal";
    case Tok::kKwInt:
      return "'int'";
    case Tok::kKwChar:
      return "'char'";
    case Tok::kKwVoid:
      return "'void'";
    case Tok::kKwStruct:
      return "'struct'";
    case Tok::kKwUnion:
      return "'union'";
    case Tok::kKwEnum:
      return "'enum'";
    case Tok::kKwTypedef:
      return "'typedef'";
    case Tok::kKwExtern:
      return "'extern'";
    case Tok::kKwStatic:
      return "'static'";
    case Tok::kKwConst:
      return "'const'";
    case Tok::kKwSizeof:
      return "'sizeof'";
    case Tok::kKwNull:
      return "'null'";
    case Tok::kKwIf:
      return "'if'";
    case Tok::kKwElse:
      return "'else'";
    case Tok::kKwWhile:
      return "'while'";
    case Tok::kKwFor:
      return "'for'";
    case Tok::kKwDo:
      return "'do'";
    case Tok::kKwReturn:
      return "'return'";
    case Tok::kKwBreak:
      return "'break'";
    case Tok::kKwContinue:
      return "'continue'";
    case Tok::kKwCount:
      return "'count'";
    case Tok::kKwBound:
      return "'bound'";
    case Tok::kKwNullterm:
      return "'nullterm'";
    case Tok::kKwOpt:
      return "'opt'";
    case Tok::kKwNonnull:
      return "'nonnull'";
    case Tok::kKwTrusted:
      return "'trusted'";
    case Tok::kKwWhen:
      return "'when'";
    case Tok::kKwBlocking:
      return "'blocking'";
    case Tok::kKwBlockingIf:
      return "'blocking_if'";
    case Tok::kKwNoblock:
      return "'noblock'";
    case Tok::kKwErrcode:
      return "'errcode'";
    case Tok::kKwInterruptHandler:
      return "'interrupt_handler'";
    case Tok::kKwDelayedFree:
      return "'delayed_free'";
    case Tok::kLParen:
      return "'('";
    case Tok::kRParen:
      return "')'";
    case Tok::kLBrace:
      return "'{'";
    case Tok::kRBrace:
      return "'}'";
    case Tok::kLBracket:
      return "'['";
    case Tok::kRBracket:
      return "']'";
    case Tok::kSemi:
      return "';'";
    case Tok::kComma:
      return "','";
    case Tok::kDot:
      return "'.'";
    case Tok::kArrow:
      return "'->'";
    case Tok::kStar:
      return "'*'";
    case Tok::kAmp:
      return "'&'";
    case Tok::kPlus:
      return "'+'";
    case Tok::kMinus:
      return "'-'";
    case Tok::kSlash:
      return "'/'";
    case Tok::kPercent:
      return "'%'";
    case Tok::kBang:
      return "'!'";
    case Tok::kTilde:
      return "'~'";
    case Tok::kLess:
      return "'<'";
    case Tok::kGreater:
      return "'>'";
    case Tok::kLessEq:
      return "'<='";
    case Tok::kGreaterEq:
      return "'>='";
    case Tok::kEqEq:
      return "'=='";
    case Tok::kBangEq:
      return "'!='";
    case Tok::kAmpAmp:
      return "'&&'";
    case Tok::kPipePipe:
      return "'||'";
    case Tok::kPipe:
      return "'|'";
    case Tok::kCaret:
      return "'^'";
    case Tok::kShl:
      return "'<<'";
    case Tok::kShr:
      return "'>>'";
    case Tok::kAssign:
      return "'='";
    case Tok::kPlusEq:
      return "'+='";
    case Tok::kMinusEq:
      return "'-='";
    case Tok::kStarEq:
      return "'*='";
    case Tok::kSlashEq:
      return "'/='";
    case Tok::kPercentEq:
      return "'%='";
    case Tok::kAmpEq:
      return "'&='";
    case Tok::kPipeEq:
      return "'|='";
    case Tok::kCaretEq:
      return "'^='";
    case Tok::kShlEq:
      return "'<<='";
    case Tok::kShrEq:
      return "'>>='";
    case Tok::kPlusPlus:
      return "'++'";
    case Tok::kMinusMinus:
      return "'--'";
    case Tok::kQuestion:
      return "'?'";
    case Tok::kColon:
      return "':'";
    case Tok::kEllipsis:
      return "'...'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, Tok>& KeywordMap() {
  static const auto* kMap = new std::unordered_map<std::string, Tok>{
      {"int", Tok::kKwInt},
      {"char", Tok::kKwChar},
      {"void", Tok::kKwVoid},
      {"struct", Tok::kKwStruct},
      {"union", Tok::kKwUnion},
      {"enum", Tok::kKwEnum},
      {"typedef", Tok::kKwTypedef},
      {"extern", Tok::kKwExtern},
      {"static", Tok::kKwStatic},
      {"const", Tok::kKwConst},
      {"sizeof", Tok::kKwSizeof},
      {"null", Tok::kKwNull},
      {"if", Tok::kKwIf},
      {"else", Tok::kKwElse},
      {"while", Tok::kKwWhile},
      {"for", Tok::kKwFor},
      {"do", Tok::kKwDo},
      {"return", Tok::kKwReturn},
      {"break", Tok::kKwBreak},
      {"continue", Tok::kKwContinue},
      {"count", Tok::kKwCount},
      {"bound", Tok::kKwBound},
      {"nullterm", Tok::kKwNullterm},
      {"opt", Tok::kKwOpt},
      {"nonnull", Tok::kKwNonnull},
      {"trusted", Tok::kKwTrusted},
      {"when", Tok::kKwWhen},
      {"blocking", Tok::kKwBlocking},
      {"blocking_if", Tok::kKwBlockingIf},
      {"noblock", Tok::kKwNoblock},
      {"errcode", Tok::kKwErrcode},
      {"interrupt_handler", Tok::kKwInterruptHandler},
      {"delayed_free", Tok::kKwDelayedFree},
  };
  return *kMap;
}

}  // namespace

Lexer::Lexer(const SourceManager& sm, int32_t file_id, DiagEngine* diags)
    : text_(sm.FileText(file_id)), file_id_(file_id), diags_(diags) {}

char Lexer::Peek(int ahead) const {
  size_t p = pos_ + static_cast<size_t>(ahead);
  return p < text_.size() ? text_[p] : '\0';
}

char Lexer::Advance() {
  char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::Match(char c) {
  if (Peek() == c) {
    Advance();
    return true;
  }
  return false;
}

SourceLoc Lexer::Here() const { return SourceLoc{file_id_, line_, col_}; }

void Lexer::LexLineComment() {
  while (pos_ < text_.size() && Peek() != '\n') {
    Advance();
  }
}

void Lexer::LexBlockComment() {
  SourceLoc start = Here();
  while (pos_ < text_.size()) {
    if (Peek() == '*' && Peek(1) == '/') {
      Advance();
      Advance();
      return;
    }
    Advance();
  }
  diags_->Error(start, "unterminated block comment", "lex");
}

Token Lexer::LexNumber() {
  Token t;
  t.kind = Tok::kIntLit;
  t.loc = Here();
  int64_t value = 0;
  if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
    Advance();
    Advance();
    while (std::isxdigit(static_cast<unsigned char>(Peek()))) {
      char c = Advance();
      int digit = std::isdigit(static_cast<unsigned char>(c))
                      ? c - '0'
                      : (std::tolower(static_cast<unsigned char>(c)) - 'a' + 10);
      value = value * 16 + digit;
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      value = value * 10 + (Advance() - '0');
    }
  }
  t.int_val = value;
  return t;
}

Token Lexer::LexIdentOrKeyword() {
  Token t;
  t.loc = Here();
  std::string name;
  while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
    name.push_back(Advance());
  }
  auto it = KeywordMap().find(name);
  if (it != KeywordMap().end()) {
    t.kind = it->second;
  } else {
    t.kind = Tok::kIdent;
  }
  t.text = std::move(name);
  return t;
}

int64_t Lexer::LexEscape() {
  // Called after the backslash has been consumed.
  char c = Advance();
  switch (c) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case 'r':
      return '\r';
    case '0':
      return 0;
    case '\\':
      return '\\';
    case '\'':
      return '\'';
    case '"':
      return '"';
    default:
      diags_->Error(Here(), std::string("unknown escape '\\") + c + "'", "lex");
      return c;
  }
}

Token Lexer::LexCharLit() {
  Token t;
  t.kind = Tok::kCharLit;
  t.loc = Here();
  Advance();  // opening quote
  if (Peek() == '\\') {
    Advance();
    t.int_val = LexEscape();
  } else if (pos_ < text_.size()) {
    t.int_val = static_cast<unsigned char>(Advance());
  }
  if (!Match('\'')) {
    diags_->Error(t.loc, "unterminated char literal", "lex");
  }
  return t;
}

Token Lexer::LexStrLit() {
  Token t;
  t.kind = Tok::kStrLit;
  t.loc = Here();
  Advance();  // opening quote
  while (pos_ < text_.size() && Peek() != '"' && Peek() != '\n') {
    if (Peek() == '\\') {
      Advance();
      t.text.push_back(static_cast<char>(LexEscape()));
    } else {
      t.text.push_back(Advance());
    }
  }
  if (!Match('"')) {
    diags_->Error(t.loc, "unterminated string literal", "lex");
  }
  return t;
}

std::vector<Token> Lexer::Lex() {
  std::vector<Token> out;
  while (pos_ < text_.size()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
      continue;
    }
    if (c == '/' && Peek(1) == '/') {
      LexLineComment();
      continue;
    }
    if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      LexBlockComment();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      out.push_back(LexNumber());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(LexIdentOrKeyword());
      continue;
    }
    if (c == '\'') {
      out.push_back(LexCharLit());
      continue;
    }
    if (c == '"') {
      out.push_back(LexStrLit());
      continue;
    }
    Token t;
    t.loc = Here();
    Advance();
    switch (c) {
      case '(':
        t.kind = Tok::kLParen;
        break;
      case ')':
        t.kind = Tok::kRParen;
        break;
      case '{':
        t.kind = Tok::kLBrace;
        break;
      case '}':
        t.kind = Tok::kRBrace;
        break;
      case '[':
        t.kind = Tok::kLBracket;
        break;
      case ']':
        t.kind = Tok::kRBracket;
        break;
      case ';':
        t.kind = Tok::kSemi;
        break;
      case ',':
        t.kind = Tok::kComma;
        break;
      case '.':
        if (Peek() == '.' && Peek(1) == '.') {
          Advance();
          Advance();
          t.kind = Tok::kEllipsis;
        } else {
          t.kind = Tok::kDot;
        }
        break;
      case '?':
        t.kind = Tok::kQuestion;
        break;
      case ':':
        t.kind = Tok::kColon;
        break;
      case '~':
        t.kind = Tok::kTilde;
        break;
      case '*':
        t.kind = Match('=') ? Tok::kStarEq : Tok::kStar;
        break;
      case '/':
        t.kind = Match('=') ? Tok::kSlashEq : Tok::kSlash;
        break;
      case '%':
        t.kind = Match('=') ? Tok::kPercentEq : Tok::kPercent;
        break;
      case '+':
        t.kind = Match('+') ? Tok::kPlusPlus : (Match('=') ? Tok::kPlusEq : Tok::kPlus);
        break;
      case '-':
        t.kind = Match('-') ? Tok::kMinusMinus
                            : (Match('=') ? Tok::kMinusEq
                                          : (Match('>') ? Tok::kArrow : Tok::kMinus));
        break;
      case '!':
        t.kind = Match('=') ? Tok::kBangEq : Tok::kBang;
        break;
      case '=':
        t.kind = Match('=') ? Tok::kEqEq : Tok::kAssign;
        break;
      case '<':
        if (Match('<')) {
          t.kind = Match('=') ? Tok::kShlEq : Tok::kShl;
        } else {
          t.kind = Match('=') ? Tok::kLessEq : Tok::kLess;
        }
        break;
      case '>':
        if (Match('>')) {
          t.kind = Match('=') ? Tok::kShrEq : Tok::kShr;
        } else {
          t.kind = Match('=') ? Tok::kGreaterEq : Tok::kGreater;
        }
        break;
      case '&':
        t.kind = Match('&') ? Tok::kAmpAmp : (Match('=') ? Tok::kAmpEq : Tok::kAmp);
        break;
      case '|':
        t.kind = Match('|') ? Tok::kPipePipe : (Match('=') ? Tok::kPipeEq : Tok::kPipe);
        break;
      case '^':
        t.kind = Match('=') ? Tok::kCaretEq : Tok::kCaret;
        break;
      default:
        diags_->Error(t.loc, std::string("unexpected character '") + c + "'", "lex");
        continue;
    }
    out.push_back(t);
  }
  Token eof;
  eof.kind = Tok::kEof;
  eof.loc = Here();
  out.push_back(eof);
  return out;
}

}  // namespace ivy
