#include "src/mc/ast.h"

#include <cstring>

namespace ivy {

int64_t TypeSize(const Type* t) {
  switch (t->kind) {
    case TypeKind::kVoid:
      return 1;  // permits void* arithmetic in trusted code
    case TypeKind::kInt:
      return 8;
    case TypeKind::kChar:
      return 1;
    case TypeKind::kPointer:
      return 8;
    case TypeKind::kArray:
      return t->array_len * TypeSize(t->elem);
    case TypeKind::kRecord:
      return t->record->size;
    case TypeKind::kFunc:
      return 8;
    case TypeKind::kError:
      return 8;
  }
  return 8;
}

int64_t TypeAlign(const Type* t) {
  switch (t->kind) {
    case TypeKind::kVoid:
    case TypeKind::kChar:
      return 1;
    case TypeKind::kInt:
    case TypeKind::kPointer:
    case TypeKind::kFunc:
    case TypeKind::kError:
      return 8;
    case TypeKind::kArray:
      return TypeAlign(t->elem);
    case TypeKind::kRecord:
      return t->record->align;
  }
  return 8;
}

bool SameType(const Type* a, const Type* b) {
  if (a == b) {
    return true;
  }
  if (a == nullptr || b == nullptr || a->kind != b->kind) {
    return false;
  }
  switch (a->kind) {
    case TypeKind::kVoid:
    case TypeKind::kInt:
    case TypeKind::kChar:
    case TypeKind::kError:
      return true;
    case TypeKind::kPointer:
      return SameType(a->pointee, b->pointee);
    case TypeKind::kArray:
      return a->array_len == b->array_len && SameType(a->elem, b->elem);
    case TypeKind::kRecord:
      return a->record == b->record;
    case TypeKind::kFunc: {
      if (!SameType(a->ret, b->ret) || a->params.size() != b->params.size()) {
        return false;
      }
      for (size_t i = 0; i < a->params.size(); ++i) {
        if (!SameType(a->params[i], b->params[i])) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::string TypeToString(const Type* t) {
  if (t == nullptr) {
    return "<null>";
  }
  switch (t->kind) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kInt:
      return "int";
    case TypeKind::kChar:
      return "char";
    case TypeKind::kError:
      return "<error>";
    case TypeKind::kPointer: {
      std::string s = TypeToString(t->pointee) + "*";
      switch (t->annot.bounds) {
        case BoundsKind::kSingle:
          break;
        case BoundsKind::kCount:
          s += " count(..)";
          break;
        case BoundsKind::kBound:
          s += " bound(..)";
          break;
        case BoundsKind::kNullterm:
          s += " nullterm";
          break;
      }
      if (t->annot.opt) {
        s += " opt";
      }
      if (t->annot.trusted) {
        s += " trusted";
      }
      return s;
    }
    case TypeKind::kArray:
      return TypeToString(t->elem) + "[" + std::to_string(t->array_len) + "]";
    case TypeKind::kRecord:
      return (t->record->is_union ? "union " : "struct ") +
             (t->record->name.empty() ? "<anon>" : t->record->name);
    case TypeKind::kFunc: {
      std::string s = TypeToString(t->ret) + "(";
      for (size_t i = 0; i < t->params.size(); ++i) {
        if (i != 0) {
          s += ", ";
        }
        s += TypeToString(t->params[i]);
      }
      return s + ")";
    }
  }
  return "?";
}

Expr* Program::NewExpr(ExprKind kind, SourceLoc loc) {
  uint32_t id = arena_->exprs.size();
  Expr* e = arena_->exprs.New();
  e->kind = kind;
  e->loc = loc;
  e->id = id;
  return e;
}

Stmt* Program::NewStmt(StmtKind kind, SourceLoc loc) {
  uint32_t id = arena_->stmts.size();
  Stmt* s = arena_->stmts.New();
  s->kind = kind;
  s->loc = loc;
  s->id = id;
  return s;
}

Type* Program::NewType(TypeKind kind) {
  Type* t = Alloc(&type_pool_);
  t->kind = kind;
  return t;
}

VarDecl* Program::NewVarDecl() {
  uint32_t id = arena_->decls.size();
  VarDecl* d = arena_->decls.New();
  d->id = id;
  return d;
}

RecordDecl* Program::NewRecord() { return Alloc(&record_pool_); }
FuncDecl* Program::NewFunc() { return Alloc(&func_pool_); }
Symbol* Program::NewSymbol() { return Alloc(&sym_pool_); }

ExprList Program::MakeExprList(const std::vector<Expr*>& v) {
  ExprList list;
  list.count = static_cast<uint32_t>(v.size());
  if (!v.empty()) {
    list.items = static_cast<Expr**>(
        arena_->bytes.Alloc(v.size() * sizeof(Expr*), alignof(Expr*)));
    std::memcpy(list.items, v.data(), v.size() * sizeof(Expr*));
  }
  return list;
}

StmtList Program::MakeStmtList(const std::vector<Stmt*>& v) {
  StmtList list;
  list.count = static_cast<uint32_t>(v.size());
  if (!v.empty()) {
    list.items = static_cast<Stmt**>(
        arena_->bytes.Alloc(v.size() * sizeof(Stmt*), alignof(Stmt*)));
    std::memcpy(list.items, v.data(), v.size() * sizeof(Stmt*));
  }
  return list;
}

void Program::MarkExprsNoRefs(uint32_t begin) {
  for (uint32_t i = begin; i < arena_->exprs.size(); ++i) {
    arena_->exprs.At(i)->no_refs = true;
  }
}

const Type* Program::IntType() {
  if (int_type_ == nullptr) {
    int_type_ = NewType(TypeKind::kInt);
  }
  return int_type_;
}

const Type* Program::CharType() {
  if (char_type_ == nullptr) {
    char_type_ = NewType(TypeKind::kChar);
  }
  return char_type_;
}

const Type* Program::VoidType() {
  if (void_type_ == nullptr) {
    void_type_ = NewType(TypeKind::kVoid);
  }
  return void_type_;
}

Type* Program::PtrTo(const Type* pointee) {
  Type* t = NewType(TypeKind::kPointer);
  t->pointee = pointee;
  return t;
}

FuncDecl* Program::FindFunc(std::string_view name) const {
  for (FuncDecl* f : funcs) {
    if (f->name == name) {
      return f;
    }
  }
  return nullptr;
}

RecordDecl* Program::FindRecord(std::string_view name) const {
  for (RecordDecl* r : records) {
    if (r->name == name) {
      return r;
    }
  }
  return nullptr;
}

}  // namespace ivy
