// Token definitions for Mini-C ("MC"), the C kernel dialect accepted by the
// Ivy tools. MC extends a C subset with first-class Deputy/CCount/BlockStop
// annotations: `count(e)`, `bound(lo,hi)`, `nullterm`, `opt`, `trusted`,
// `when(e)`, `blocking`, `blocking_if(param)`, `noblock`, `errcode(...)`,
// `interrupt_handler`, and the statement blocks `trusted { }` and
// `delayed_free { }`.
#ifndef SRC_MC_TOKEN_H_
#define SRC_MC_TOKEN_H_

#include <cstdint>
#include <string>

#include "src/support/source.h"

namespace ivy {

enum class Tok {
  kEof,
  kIdent,
  kIntLit,
  kCharLit,
  kStrLit,
  // Type and declaration keywords.
  kKwInt,
  kKwChar,
  kKwVoid,
  kKwStruct,
  kKwUnion,
  kKwEnum,
  kKwTypedef,
  kKwExtern,
  kKwStatic,
  kKwConst,
  kKwSizeof,
  kKwNull,
  // Statement keywords.
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwDo,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  // Ivy annotation keywords.
  kKwCount,
  kKwBound,
  kKwNullterm,
  kKwOpt,
  kKwNonnull,
  kKwTrusted,
  kKwWhen,
  kKwBlocking,
  kKwBlockingIf,
  kKwNoblock,
  kKwErrcode,
  kKwInterruptHandler,
  kKwDelayedFree,
  // Punctuation.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  kDot,
  kArrow,
  kStar,
  kAmp,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kBang,
  kTilde,
  kLess,
  kGreater,
  kLessEq,
  kGreaterEq,
  kEqEq,
  kBangEq,
  kAmpAmp,
  kPipePipe,
  kPipe,
  kCaret,
  kShl,
  kShr,
  kAssign,
  kPlusEq,
  kMinusEq,
  kStarEq,
  kSlashEq,
  kPercentEq,
  kAmpEq,
  kPipeEq,
  kCaretEq,
  kShlEq,
  kShrEq,
  kPlusPlus,
  kMinusMinus,
  kQuestion,
  kColon,
  kEllipsis,
};

// Returns a human-readable spelling for diagnostics ("'count'", "'<='", ...).
const char* TokName(Tok t);

struct Token {
  Tok kind = Tok::kEof;
  SourceLoc loc;
  std::string text;     // identifier spelling or string literal contents
  int64_t int_val = 0;  // integer/char literal value
};

}  // namespace ivy

#endif  // SRC_MC_TOKEN_H_
