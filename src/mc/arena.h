// Arena storage for the Mini-C AST: chunked node slabs with stable addresses
// and dense uint32_t ids, a bump allocator for child-list arrays, and a
// string interner with per-id content hashes.
//
// Design (see docs/ARCHITECTURE.md "Frontend"):
//   - Expr/Stmt/VarDecl nodes live in per-kind slabs of fixed-size chunks.
//     Addresses never move, so consumers keep using plain pointers, while
//     every node also carries its slab index (`id`) — the typed handles
//     ExprId/StmtId/DeclId below. Ids are assigned in parse order, so they
//     are deterministic given the source bytes, and all nodes of one
//     function occupy one contiguous id range (FuncDecl::{expr,stmt,decl}_
//     {begin,end}) — the "slab span" that fingerprinting iterates linearly
//     and that serializes as four integers.
//   - Child lists (call args, block bodies) are arena-allocated arrays, not
//     std::vectors: one bump allocation per list, nothing to destruct.
//   - Identifier/string spellings are interned: nodes hold a string_view
//     into arena-owned bytes plus a dense StrId; the interner keeps one
//     content hash per id so fingerprints mix string content in O(1).
//   - Everything a slab or the bump arena owns is trivially destructible
//     (static_asserted in ast.h), so dropping the arena frees the whole AST
//     in O(chunks) — error-path parses cannot leak by construction.
//
// AstAllocMode::kHeap preserves the pre-arena allocation strategy (one
// individually-owned heap object per node / list / string, no interning
// dedup) behind the same API. It exists for the BM_ParseSema{Heap,Arena}
// benchmark pair and the heap-vs-arena identity tests; ids, spans and
// fingerprints behave identically in both modes.
#ifndef SRC_MC_ARENA_H_
#define SRC_MC_ARENA_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ivy {

// FNV-1a parameters — the one pair of constants every hash in the frontend
// and incremental layer (string interning, fingerprints, callee-list hashes)
// derives from.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// Sentinel for "no node" / "no string" in id space.
constexpr uint32_t kNoNode = 0xFFFFFFFFu;
constexpr uint32_t kNoStr = 0xFFFFFFFFu;

// Typed index handles. A handle is just the node's slab index; `kNoNode`
// means null. Nodes store their own id, so `ExprId{e->id}` and
// `prog.ExprAt(id)` convert both ways.
struct ExprId {
  uint32_t v = kNoNode;
  bool valid() const { return v != kNoNode; }
};
struct StmtId {
  uint32_t v = kNoNode;
  bool valid() const { return v != kNoNode; }
};
struct DeclId {
  uint32_t v = kNoNode;
  bool valid() const { return v != kNoNode; }
};

enum class AstAllocMode { kArena, kHeap };

// Length-tagged FNV-1a over string content. The value the interner caches
// per StrId and the only way string content enters a fingerprint.
inline uint64_t StrContentHash(std::string_view s) {
  uint64_t h = kFnvOffset;
  uint64_t n = s.size();
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<uint8_t>(n >> (i * 8));
    h *= kFnvPrime;
  }
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// Chunked byte arena for child-list arrays and interned string bytes.
// Addresses are stable; nothing is ever freed individually. In kHeap mode
// every allocation is its own heap block (the pre-arena cost model).
class BumpArena {
 public:
  static constexpr size_t kChunkBytes = 64 * 1024;

  explicit BumpArena(AstAllocMode mode = AstAllocMode::kArena) : mode_(mode) {}

  void* Alloc(size_t n, size_t align) {
    if (n == 0) {
      return nullptr;
    }
    used_ += n;
    if (mode_ == AstAllocMode::kHeap || n > kChunkBytes / 4) {
      chunks_.emplace_back(new char[n]);
      reserved_ += n;
      return chunks_.back().get();
    }
    size_t off = (cur_off_ + align - 1) & ~(align - 1);
    if (cur_ == nullptr || off + n > kChunkBytes) {
      chunks_.emplace_back(new char[kChunkBytes]);
      reserved_ += kChunkBytes;
      cur_ = chunks_.back().get();
      off = 0;
    }
    cur_off_ = off + n;
    return cur_ + off;
  }

  // Copies `s` into the arena and returns a stable view of it.
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) {
      return std::string_view();
    }
    char* p = static_cast<char*>(Alloc(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return std::string_view(p, s.size());
  }

  size_t used_bytes() const { return used_; }
  size_t reserved_bytes() const { return reserved_; }

 private:
  AstAllocMode mode_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cur_ = nullptr;
  size_t cur_off_ = 0;
  size_t used_ = 0;
  size_t reserved_ = 0;
};

// A stable-address slab of T with dense uint32_t indices. Arena mode packs
// nodes into 512-element chunks (id -> chunk[id >> 9][id & 511]); heap mode
// allocates each node individually, mimicking the old one-make_unique-per-
// node parser.
template <typename T>
class NodeSlab {
 public:
  static constexpr uint32_t kChunkShift = 9;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;

  explicit NodeSlab(AstAllocMode mode = AstAllocMode::kArena) : mode_(mode) {}

  T* New() {
    if (mode_ == AstAllocMode::kHeap) {
      singles_.push_back(std::make_unique<T>());
      ++count_;
      return singles_.back().get();
    }
    if ((count_ & kChunkMask) == 0) {
      chunks_.emplace_back(new T[kChunkSize]);
    }
    T* p = &chunks_.back()[count_ & kChunkMask];
    ++count_;
    return p;
  }

  T* At(uint32_t id) {
    if (mode_ == AstAllocMode::kHeap) {
      return singles_[id].get();
    }
    return &chunks_[id >> kChunkShift][id & kChunkMask];
  }
  const T* At(uint32_t id) const { return const_cast<NodeSlab*>(this)->At(id); }

  uint32_t size() const { return count_; }

  size_t bytes() const {
    if (mode_ == AstAllocMode::kHeap) {
      return static_cast<size_t>(count_) * (sizeof(T) + sizeof(void*));
    }
    return chunks_.size() * kChunkSize * sizeof(T);
  }

 private:
  AstAllocMode mode_;
  uint32_t count_ = 0;
  std::vector<std::unique_ptr<T[]>> chunks_;    // kArena
  std::vector<std::unique_ptr<T>> singles_;     // kHeap
};

// An interned string: a stable view of the bytes plus the dense id whose
// content hash the interner caches.
struct StrRef {
  std::string_view view;
  uint32_t id = kNoStr;
};

// Immutable snapshot of an interner's state, shareable across arenas. The
// FrontendCache takes one right after the prelude parse of the first module
// compile; every later module seeds its interner from it, so prelude
// identifier bytes are stored (and hashed) once per session instead of once
// per module. Ids are preserved exactly: seeding is equivalent to re-
// interning the same strings in the same order.
struct InternSnapshot {
  std::string bytes;  // concatenated string contents (stable once built)
  std::vector<std::pair<uint32_t, uint32_t>> spans;  // (offset, length) per id
  std::vector<uint64_t> hashes;                      // content hash per id
};

// Deduplicating string interner with per-id content hashes. In kHeap mode
// dedup is disabled (every call copies, like the old per-node std::string),
// but ids and hashes still behave the same for fingerprinting.
class StringInterner {
 public:
  explicit StringInterner(AstAllocMode mode, BumpArena* bytes)
      : mode_(mode), bytes_(bytes) {}

  StrRef Intern(std::string_view s) {
    if (mode_ == AstAllocMode::kArena) {
      auto it = map_.find(s);
      if (it != map_.end()) {
        return StrRef{views_[it->second], it->second};
      }
    }
    std::string_view stored = bytes_->CopyString(s);
    uint32_t id = static_cast<uint32_t>(views_.size());
    views_.push_back(stored);
    hashes_.push_back(StrContentHash(stored));
    if (mode_ == AstAllocMode::kArena) {
      map_.emplace(stored, id);
    }
    return StrRef{stored, id};
  }

  std::string_view View(uint32_t id) const { return views_[id]; }
  uint64_t Hash(uint32_t id) const { return hashes_[id]; }
  uint32_t size() const { return static_cast<uint32_t>(views_.size()); }

  // Seeds this (empty) interner from a snapshot. The snapshot's byte buffer
  // is shared, not copied; `base` keeps it alive for the arena's lifetime.
  void Seed(std::shared_ptr<const InternSnapshot> base) {
    if (base == nullptr || size() != 0 || mode_ != AstAllocMode::kArena) {
      return;
    }
    views_.reserve(base->spans.size());
    hashes_ = base->hashes;
    for (const auto& [off, len] : base->spans) {
      std::string_view v(base->bytes.data() + off, len);
      map_.emplace(v, static_cast<uint32_t>(views_.size()));
      views_.push_back(v);
    }
    base_ = std::move(base);
  }

  std::shared_ptr<const InternSnapshot> Snapshot() const {
    auto snap = std::make_shared<InternSnapshot>();
    size_t total = 0;
    for (std::string_view v : views_) {
      total += v.size();
    }
    snap->bytes.reserve(total);
    snap->spans.reserve(views_.size());
    for (std::string_view v : views_) {
      snap->spans.emplace_back(static_cast<uint32_t>(snap->bytes.size()),
                               static_cast<uint32_t>(v.size()));
      snap->bytes.append(v);
    }
    snap->hashes = hashes_;
    return snap;
  }

 private:
  AstAllocMode mode_;
  BumpArena* bytes_;
  std::vector<std::string_view> views_;
  std::vector<uint64_t> hashes_;
  std::unordered_map<std::string_view, uint32_t> map_;
  std::shared_ptr<const InternSnapshot> base_;  // keeps seeded bytes alive
};

}  // namespace ivy

#endif  // SRC_MC_ARENA_H_
