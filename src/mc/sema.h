// Semantic analysis for Mini-C: record layout, name resolution, type
// checking, Deputy annotation resolution, and trusted-region tracking.
//
// Sema enforces the Deputy typing rules the paper describes in §2.1:
// annotations are *untrusted* (they are only well-formedness-checked here;
// their truth is enforced by static discharge + run-time checks), illegal
// idioms (cross-record casts, unguarded union access, int-to-pointer
// forging) are errors unless the code is marked trusted, and trusted code is
// counted so the E1 statistics can report the annotation burden.
#ifndef SRC_MC_SEMA_H_
#define SRC_MC_SEMA_H_

#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/mc/ast.h"
#include "src/support/diag.h"

namespace ivy {

// Maps a bodyless function name to a VM builtin id, or -1 if unknown.
using BuiltinResolver = std::function<int(const std::string&)>;

// Aggregate statistics sema gathers for the E1 experiment.
struct SemaStats {
  int annotation_sites = 0;          // count/bound/nullterm/opt/when/blocking/...
  std::set<std::pair<int, int>> annotated_lines;  // (file, line) with any annotation
  std::set<std::pair<int, int>> trusted_lines;    // (file, line) inside trusted code
  int trusted_casts = 0;
  int trusted_blocks = 0;
  int trusted_funcs = 0;
};

class Sema {
 public:
  Sema(Program* prog, DiagEngine* diags, BuiltinResolver builtins);

  // Runs all checks. Returns true if the program is legal (no errors).
  bool Run();

  const SemaStats& stats() const { return stats_; }

  // Resolved function table: name -> canonical FuncDecl (definitions win
  // over declarations). Keys view the FuncDecl's own (pool-stable) name, so
  // lookups from interned Expr::str_val need no temporary string.
  const std::unordered_map<std::string_view, FuncDecl*>& func_map() const { return func_map_; }

 private:
  // Layout.
  void AssignTypeIds();
  bool LayoutRecord(RecordDecl* rec, std::vector<RecordDecl*>* in_progress);
  void ResolveFieldAnnotations(RecordDecl* rec);
  // Resolves Idents in a field-scoped annotation expression (count/when on a
  // record field) against the fields of `rec`.
  void ResolveAnnotExprInRecord(Expr* e, RecordDecl* rec);

  // Symbols and scopes.
  void PushScope();
  void PopScope();
  // Scope keys are views of arena-interned spellings or pool-stable Symbol
  // names; both outlive the Sema.
  Symbol* Declare(std::string_view name, Symbol* sym);
  Symbol* Lookup(std::string_view name);

  // Declarations.
  void CollectGlobals();
  void CheckFunction(FuncDecl* fn);
  void CheckAnnotTypeInScope(const Type* t, SourceLoc loc);
  void NoteAnnotations(const Type* t, SourceLoc loc);

  // Statements and expressions.
  void CheckStmt(Stmt* s);
  const Type* CheckExpr(Expr* e);
  const Type* CheckCall(Expr* e);
  const Type* CheckBinary(Expr* e);
  const Type* CheckAssign(Expr* e);
  const Type* CheckMember(Expr* e);
  const Type* CheckCast(Expr* e);
  bool IsLvalue(const Expr* e) const;
  // True if `src` (an expression of type src->type) can initialize/assign a
  // location of type `dst`. Reports a diagnostic at `loc` when not.
  bool CheckCompat(const Type* dst, Expr* src, SourceLoc loc, const char* what);
  bool CompatQuiet(const Type* dst, const Expr* src) const;
  void FoldConst(Expr* e);
  void MarkTrusted(Expr* e);
  void NoteTrustedLines(const Stmt* s);

  Program* prog_;
  DiagEngine* diags_;
  BuiltinResolver builtins_;
  SemaStats stats_;

  std::unordered_map<std::string_view, FuncDecl*> func_map_;
  std::unordered_map<std::string_view, Symbol*> global_scope_;
  std::vector<std::unordered_map<std::string_view, Symbol*>> scopes_;
  FuncDecl* cur_fn_ = nullptr;
  int trusted_depth_ = 0;
  int loop_depth_ = 0;
  int next_local_id_ = 0;
};

}  // namespace ivy

#endif  // SRC_MC_SEMA_H_
