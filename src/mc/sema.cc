#include "src/mc/sema.h"

#include <algorithm>

namespace ivy {

Sema::Sema(Program* prog, DiagEngine* diags, BuiltinResolver builtins)
    : prog_(prog), diags_(diags), builtins_(std::move(builtins)) {}

bool Sema::Run() {
  AssignTypeIds();
  std::vector<RecordDecl*> in_progress;
  for (RecordDecl* rec : prog_->records) {
    LayoutRecord(rec, &in_progress);
  }
  for (RecordDecl* rec : prog_->records) {
    ResolveFieldAnnotations(rec);
  }
  CollectGlobals();
  for (FuncDecl* fn : prog_->funcs) {
    if (fn->body != nullptr) {
      CheckFunction(fn);
    }
  }
  return diags_->ok();
}

void Sema::AssignTypeIds() {
  int next = 0;
  for (RecordDecl* rec : prog_->records) {
    rec->type_id = next++;
  }
}

bool Sema::LayoutRecord(RecordDecl* rec, std::vector<RecordDecl*>* in_progress) {
  if (rec->size > 0 || rec->fields.empty()) {
    if (!rec->complete) {
      // Incomplete records are fine as pointer targets only; size stays 0 and
      // any attempt to use them by value errors below.
    }
    return rec->size > 0;
  }
  if (std::find(in_progress->begin(), in_progress->end(), rec) != in_progress->end()) {
    diags_->Error(rec->loc, "record '" + rec->name + "' recursively contains itself", "sema");
    return false;
  }
  in_progress->push_back(rec);
  int64_t offset = 0;
  int64_t align = 1;
  int64_t max_field = 0;
  for (RecordField& f : rec->fields) {
    // Recursively lay out nested record fields first.
    const Type* ft = f.type;
    if (ft->IsRecord()) {
      LayoutRecord(ft->record, in_progress);
      if (ft->record->size == 0) {
        diags_->Error(f.loc, "field '" + f.name + "' has incomplete type", "sema");
      }
    }
    if (ft->IsArray() && ft->elem->IsRecord()) {
      LayoutRecord(ft->elem->record, in_progress);
    }
    int64_t fa = TypeAlign(ft);
    int64_t fs = TypeSize(ft);
    align = std::max(align, fa);
    if (rec->is_union) {
      f.offset = 0;
      max_field = std::max(max_field, fs);
    } else {
      offset = (offset + fa - 1) / fa * fa;
      f.offset = offset;
      offset += fs;
    }
  }
  int64_t raw = rec->is_union ? max_field : offset;
  rec->align = align;
  rec->size = (raw + align - 1) / align * align;
  if (rec->size == 0) {
    rec->size = align;
  }
  in_progress->pop_back();
  return true;
}

void Sema::ResolveAnnotExprInRecord(Expr* e, RecordDecl* rec) {
  if (e == nullptr) {
    return;
  }
  if (e->kind == ExprKind::kIdent) {
    auto ec = prog_->enum_consts.find(e->str_val);
    if (ec != prog_->enum_consts.end()) {
      e->kind = ExprKind::kIntLit;
      e->int_val = ec->second;
      e->is_const = true;
      e->type = prog_->IntType();
      return;
    }
    const RecordField* f = rec->FindField(e->str_val);
    if (f == nullptr && rec->parent_struct != nullptr) {
      f = rec->parent_struct->FindField(e->str_val);
      if (f != nullptr) {
        e->field_record = rec->parent_struct;
      }
    } else if (f != nullptr) {
      e->field_record = rec;
    }
    if (f == nullptr) {
      diags_->Error(e->loc,
                    "annotation refers to unknown field '" + std::string(e->str_val) +
                        "' of record '" + rec->name + "'",
                    "sema");
      return;
    }
    e->field = f;
    e->type = f->type;
    return;
  }
  ResolveAnnotExprInRecord(e->a, rec);
  ResolveAnnotExprInRecord(e->b, rec);
  ResolveAnnotExprInRecord(e->c, rec);
  for (Expr* arg : e->args) {
    ResolveAnnotExprInRecord(arg, rec);
  }
  if (e->kind == ExprKind::kIntLit) {
    e->is_const = true;
    e->type = prog_->IntType();
  }
}

void Sema::ResolveFieldAnnotations(RecordDecl* rec) {
  // `when` guards on a union's members resolve against the *parent* struct;
  // count/bound annotations on a struct field resolve against sibling fields.
  RecordDecl* scope = rec;
  for (RecordField& f : rec->fields) {
    if (f.when != nullptr) {
      if (rec->parent_struct == nullptr) {
        diags_->Error(f.loc, "'when' guard outside an inline union", "sema");
      } else {
        ResolveAnnotExprInRecord(f.when, rec->parent_struct);
        stats_.annotation_sites++;
        stats_.annotated_lines.insert({f.loc.file, f.loc.line});
      }
    }
    const Type* t = f.type;
    while (t != nullptr && (t->IsPointer() || t->IsArray())) {
      if (t->IsPointer()) {
        if (t->annot.count != nullptr) {
          ResolveAnnotExprInRecord(t->annot.count, scope);
        }
        if (t->annot.lo != nullptr) {
          ResolveAnnotExprInRecord(t->annot.lo, scope);
        }
        if (t->annot.hi != nullptr) {
          ResolveAnnotExprInRecord(t->annot.hi, scope);
        }
        if (t->annot.bounds != BoundsKind::kSingle || t->annot.opt || t->annot.trusted) {
          stats_.annotation_sites++;
          stats_.annotated_lines.insert({f.loc.file, f.loc.line});
        }
        t = t->pointee;
      } else {
        t = t->elem;
      }
    }
  }
}

void Sema::PushScope() { scopes_.emplace_back(); }

void Sema::PopScope() { scopes_.pop_back(); }

Symbol* Sema::Declare(std::string_view name, Symbol* sym) {
  auto& scope = scopes_.back();
  auto [it, inserted] = scope.emplace(name, sym);
  if (!inserted) {
    diags_->Error(sym->loc, "redeclaration of '" + std::string(name) + "'", "sema");
  }
  return it->second;
}

Symbol* Sema::Lookup(std::string_view name) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) {
      return found->second;
    }
  }
  auto g = global_scope_.find(name);
  return g == global_scope_.end() ? nullptr : g->second;
}

void Sema::CollectGlobals() {
  // Functions: merge declarations with definitions; detect duplicates.
  for (FuncDecl* fn : prog_->funcs) {
    auto it = func_map_.find(fn->name);
    if (it == func_map_.end()) {
      func_map_[fn->name] = fn;
    } else {
      FuncDecl* prev = it->second;
      if (prev->body != nullptr && fn->body != nullptr) {
        diags_->Error(fn->loc, "redefinition of function '" + fn->name + "'", "sema");
      } else if (fn->body != nullptr) {
        // Definition supersedes declaration; keep attributes from both.
        fn->attrs.blocking = fn->attrs.blocking || prev->attrs.blocking;
        fn->attrs.noblock = fn->attrs.noblock || prev->attrs.noblock;
        fn->attrs.interrupt_handler =
            fn->attrs.interrupt_handler || prev->attrs.interrupt_handler;
        if (fn->attrs.blocking_if_param < 0) {
          fn->attrs.blocking_if_param = prev->attrs.blocking_if_param;
        }
        if (fn->attrs.errcodes.empty()) {
          fn->attrs.errcodes = prev->attrs.errcodes;
        }
        func_map_[fn->name] = fn;
      }
    }
  }
  // Assign dense ids to canonical functions and resolve builtins.
  int next_id = 0;
  for (FuncDecl* fn : prog_->funcs) {
    if (func_map_[fn->name] != fn) {
      fn->func_id = -1;
      continue;
    }
    fn->func_id = next_id++;
    if (fn->body == nullptr) {
      int bid = builtins_ ? builtins_(fn->name) : -1;
      if (bid >= 0) {
        fn->is_builtin = true;
        fn->builtin_id = bid;
      }
    }
    if (fn->attrs.blocking || fn->attrs.blocking_if_param >= 0 || fn->attrs.noblock ||
        fn->attrs.interrupt_handler || !fn->attrs.errcodes.empty()) {
      stats_.annotation_sites++;
      stats_.annotated_lines.insert({fn->loc.file, fn->loc.line});
    }
    if (fn->attrs.trusted) {
      stats_.trusted_funcs++;
    }
  }
  // Globals.
  for (VarDecl* g : prog_->globals) {
    if (global_scope_.count(g->name) != 0 || func_map_.count(g->name) != 0) {
      diags_->Error(g->loc, "redeclaration of global '" + std::string(g->name) + "'", "sema");
      continue;
    }
    Symbol* sym = prog_->NewSymbol();
    sym->name = std::string(g->name);
    sym->kind = SymKind::kGlobal;
    sym->type = g->type;
    sym->var = g;
    sym->loc = g->loc;
    g->sym = sym;
    global_scope_[g->name] = sym;
    NoteAnnotations(g->type, g->loc);
    if (g->init != nullptr) {
      CheckExpr(g->init);
      if (!g->init->is_const && g->init->kind != ExprKind::kStrLit) {
        diags_->Error(g->init->loc, "global initializer must be constant", "sema");
      }
      CheckCompat(g->type, g->init, g->init->loc, "global initializer");
    }
  }
  // Global pointer annotations may refer to other globals: resolve them now
  // using the (complete) global scope.
  scopes_.clear();
  PushScope();
  for (VarDecl* g : prog_->globals) {
    CheckAnnotTypeInScope(g->type, g->loc);
  }
  PopScope();
}

void Sema::NoteAnnotations(const Type* t, SourceLoc loc) {
  while (t != nullptr) {
    if (t->IsPointer()) {
      if (t->annot.bounds != BoundsKind::kSingle || t->annot.opt || t->annot.trusted) {
        stats_.annotation_sites++;
        stats_.annotated_lines.insert({loc.file, loc.line});
      }
      t = t->pointee;
    } else if (t->IsArray()) {
      t = t->elem;
    } else {
      return;
    }
  }
}

void Sema::CheckAnnotTypeInScope(const Type* t, SourceLoc loc) {
  while (t != nullptr) {
    if (t->IsPointer()) {
      if (t->annot.count != nullptr && t->annot.count->type == nullptr) {
        CheckExpr(t->annot.count);
        if (t->annot.count->type != nullptr && !t->annot.count->type->IsInteger() &&
            !t->annot.count->type->IsError()) {
          diags_->Error(loc, "count() expression must have integer type", "sema");
        }
      }
      if (t->annot.lo != nullptr && t->annot.lo->type == nullptr) {
        CheckExpr(t->annot.lo);
      }
      if (t->annot.hi != nullptr && t->annot.hi->type == nullptr) {
        CheckExpr(t->annot.hi);
      }
      t = t->pointee;
    } else if (t->IsArray()) {
      t = t->elem;
    } else {
      return;
    }
  }
}

void Sema::CheckFunction(FuncDecl* fn) {
  cur_fn_ = fn;
  next_local_id_ = 0;
  trusted_depth_ = fn->attrs.trusted ? 1 : 0;
  // Kernel calling convention: records travel by pointer, never by value.
  if (fn->type->ret != nullptr && fn->type->ret->IsRecord()) {
    diags_->Error(fn->loc, "functions cannot return records by value", "sema");
  }
  for (const Symbol* p : fn->params) {
    if (p->type != nullptr && p->type->IsRecord()) {
      diags_->Error(p->loc.IsValid() ? p->loc : fn->loc,
                    "record parameters must be passed by pointer", "sema");
    }
  }
  scopes_.clear();
  PushScope();
  for (Symbol* p : fn->params) {
    if (!p->name.empty()) {
      Declare(p->name, p);
    }
    p->local_id = next_local_id_++;
  }
  // Parameter annotations (e.g. `char* count(n) buf, int n`) may refer to
  // sibling parameters, so resolve them after all are in scope.
  for (Symbol* p : fn->params) {
    CheckAnnotTypeInScope(p->type, p->loc);
    NoteAnnotations(p->type, fn->loc);
  }
  if (fn->attrs.trusted) {
    NoteTrustedLines(fn->body);
  }
  CheckStmt(fn->body);
  PopScope();
  cur_fn_ = nullptr;
}

void Sema::NoteTrustedLines(const Stmt* s) {
  if (s == nullptr) {
    return;
  }
  stats_.trusted_lines.insert({s->loc.file, s->loc.line});
  if (s->expr != nullptr) {
    stats_.trusted_lines.insert({s->expr->loc.file, s->expr->loc.line});
  }
  NoteTrustedLines(s->init);
  NoteTrustedLines(s->then_stmt);
  NoteTrustedLines(s->else_stmt);
  for (const Stmt* child : s->body) {
    NoteTrustedLines(child);
  }
}

void Sema::CheckStmt(Stmt* s) {
  if (s == nullptr) {
    return;
  }
  switch (s->kind) {
    case StmtKind::kExpr:
      CheckExpr(s->expr);
      return;
    case StmtKind::kDecl: {
      VarDecl* d = s->decl;
      Symbol* sym = prog_->NewSymbol();
      sym->name = std::string(d->name);
      sym->kind = SymKind::kLocal;
      sym->type = d->type;
      sym->var = d;
      sym->loc = d->loc;
      sym->local_id = next_local_id_++;
      d->sym = sym;
      if (d->init != nullptr) {
        CheckExpr(d->init);
      }
      Declare(d->name, sym);
      CheckAnnotTypeInScope(d->type, d->loc);
      NoteAnnotations(d->type, d->loc);
      if (d->init != nullptr) {
        CheckCompat(d->type, d->init, d->init->loc, "initializer");
      }
      return;
    }
    case StmtKind::kIf:
      CheckExpr(s->cond);
      CheckStmt(s->then_stmt);
      CheckStmt(s->else_stmt);
      return;
    case StmtKind::kWhile:
    case StmtKind::kDoWhile:
      CheckExpr(s->cond);
      ++loop_depth_;
      CheckStmt(s->then_stmt);
      --loop_depth_;
      return;
    case StmtKind::kFor:
      PushScope();
      CheckStmt(s->init);
      if (s->cond != nullptr) {
        CheckExpr(s->cond);
      }
      if (s->step != nullptr) {
        CheckExpr(s->step);
      }
      ++loop_depth_;
      CheckStmt(s->then_stmt);
      --loop_depth_;
      PopScope();
      return;
    case StmtKind::kReturn: {
      const Type* ret = cur_fn_->type->ret;
      if (s->expr != nullptr) {
        CheckExpr(s->expr);
        if (ret->IsVoid()) {
          diags_->Error(s->loc, "return with value in void function", "sema");
        } else {
          CheckCompat(ret, s->expr, s->loc, "return value");
        }
      } else if (!ret->IsVoid()) {
        diags_->Error(s->loc, "return without value in non-void function", "sema");
      }
      return;
    }
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      if (loop_depth_ == 0) {
        diags_->Error(s->loc, "break/continue outside loop", "sema");
      }
      return;
    case StmtKind::kSeq: {
      for (Stmt* child : s->body) {
        CheckStmt(child);
      }
      return;
    }
    case StmtKind::kBlock:
    case StmtKind::kDelayedFree: {
      PushScope();
      for (Stmt* child : s->body) {
        CheckStmt(child);
      }
      PopScope();
      return;
    }
    case StmtKind::kTrusted: {
      ++trusted_depth_;
      ++stats_.trusted_blocks;
      NoteTrustedLines(s);
      PushScope();
      for (Stmt* child : s->body) {
        CheckStmt(child);
      }
      PopScope();
      --trusted_depth_;
      return;
    }
    case StmtKind::kEmpty:
      return;
  }
}

void Sema::MarkTrusted(Expr* e) {
  if (trusted_depth_ > 0) {
    e->in_trusted = true;
  }
}

bool Sema::IsLvalue(const Expr* e) const {
  switch (e->kind) {
    case ExprKind::kIdent:
      return e->sym != nullptr &&
             (e->sym->kind == SymKind::kGlobal || e->sym->kind == SymKind::kLocal ||
              e->sym->kind == SymKind::kParam);
    case ExprKind::kDeref:
    case ExprKind::kIndex:
      return true;
    case ExprKind::kMember:
      return e->is_arrow || IsLvalue(e->a);
    default:
      return false;
  }
}

bool Sema::CompatQuiet(const Type* dst, const Expr* src) const {
  const Type* st = src->type;
  if (dst == nullptr || st == nullptr || dst->IsError() || st->IsError()) {
    return true;  // avoid cascades
  }
  if (SameType(dst, st)) {
    return true;
  }
  if (dst->IsInteger() && st->IsInteger()) {
    return true;
  }
  if (dst->IsPointer() && src->IsNullConst()) {
    return true;
  }
  if (dst->IsPointer() && st->IsPointer()) {
    if (SameType(dst->pointee, st->pointee)) {
      return true;
    }
    // void* <-> T* (the kmalloc idiom).
    if (dst->pointee->IsVoid() || st->pointee->IsVoid()) {
      return true;
    }
    // Trusted pointers absorb anything (that is their job).
    if (dst->annot.trusted || st->annot.trusted) {
      return true;
    }
    return false;
  }
  // Array-to-pointer decay.
  if (dst->IsPointer() && st->IsArray() && SameType(dst->pointee, st->elem)) {
    return true;
  }
  // Function designator to function pointer.
  if (dst->IsFuncPointer() && st->IsFunc() && SameType(dst->pointee, st)) {
    return true;
  }
  if (dst->IsFuncPointer() && st->IsFuncPointer() && SameType(dst->pointee, st->pointee)) {
    return true;
  }
  return false;
}

bool Sema::CheckCompat(const Type* dst, Expr* src, SourceLoc loc, const char* what) {
  if (CompatQuiet(dst, src)) {
    return true;
  }
  if (trusted_depth_ > 0) {
    // Trusted code may do representation-changing assignments; Deputy counts
    // them rather than checking them.
    return true;
  }
  diags_->Error(loc,
                std::string("incompatible types in ") + what + ": cannot convert " +
                    TypeToString(src->type) + " to " + TypeToString(dst),
                "sema");
  return false;
}

void Sema::FoldConst(Expr* e) {
  switch (e->kind) {
    case ExprKind::kIntLit:
      e->is_const = true;
      return;
    case ExprKind::kUnary: {
      if (e->a->is_const) {
        switch (e->un_op) {
          case UnOp::kNeg:
            e->int_val = -e->a->int_val;
            break;
          case UnOp::kLogNot:
            e->int_val = e->a->int_val == 0 ? 1 : 0;
            break;
          case UnOp::kBitNot:
            e->int_val = ~e->a->int_val;
            break;
        }
        e->is_const = true;
      }
      return;
    }
    case ExprKind::kBinary: {
      if (e->a->is_const && e->b->is_const) {
        int64_t a = e->a->int_val;
        int64_t b = e->b->int_val;
        int64_t r = 0;
        bool ok = true;
        switch (e->bin_op) {
          case BinOp::kAdd:
            r = a + b;
            break;
          case BinOp::kSub:
            r = a - b;
            break;
          case BinOp::kMul:
            r = a * b;
            break;
          case BinOp::kDiv:
            ok = b != 0;
            r = ok ? a / b : 0;
            break;
          case BinOp::kRem:
            ok = b != 0;
            r = ok ? a % b : 0;
            break;
          case BinOp::kShl:
            r = a << b;
            break;
          case BinOp::kShr:
            r = a >> b;
            break;
          case BinOp::kLt:
            r = a < b;
            break;
          case BinOp::kGt:
            r = a > b;
            break;
          case BinOp::kLe:
            r = a <= b;
            break;
          case BinOp::kGe:
            r = a >= b;
            break;
          case BinOp::kEq:
            r = a == b;
            break;
          case BinOp::kNe:
            r = a != b;
            break;
          case BinOp::kBitAnd:
            r = a & b;
            break;
          case BinOp::kBitOr:
            r = a | b;
            break;
          case BinOp::kBitXor:
            r = a ^ b;
            break;
          case BinOp::kLogAnd:
            r = (a != 0 && b != 0) ? 1 : 0;
            break;
          case BinOp::kLogOr:
            r = (a != 0 || b != 0) ? 1 : 0;
            break;
          case BinOp::kNone:
            ok = false;
            break;
        }
        if (ok) {
          e->int_val = r;
          e->is_const = true;
        }
      }
      return;
    }
    default:
      return;
  }
}

const Type* Sema::CheckMember(Expr* e) {
  const Type* base = CheckExpr(e->a);
  RecordDecl* rec = nullptr;
  if (e->is_arrow) {
    if (base->IsPointer() && base->pointee->IsRecord()) {
      rec = base->pointee->record;
    } else if (!base->IsError()) {
      diags_->Error(e->loc, "'->' applied to non-record-pointer " + TypeToString(base), "sema");
    }
  } else {
    if (base->IsRecord()) {
      rec = base->record;
    } else if (!base->IsError()) {
      diags_->Error(e->loc, "'.' applied to non-record " + TypeToString(base), "sema");
    }
  }
  if (rec == nullptr) {
    return prog_->NewType(TypeKind::kError);
  }
  const RecordField* f = rec->FindField(e->str_val);
  if (f == nullptr) {
    diags_->Error(e->loc,
                  "no field '" + std::string(e->str_val) + "' in record '" + rec->name + "'",
                  "sema");
    return prog_->NewType(TypeKind::kError);
  }
  e->field = f;
  e->field_record = rec;
  // Deputy union rule: accessing a member of a union without a `when` guard
  // is illegal outside trusted code (§2.1: "misuse of unions").
  if (rec->is_union && f->when == nullptr && trusted_depth_ == 0) {
    diags_->Error(e->loc,
                  "access to union member '" + f->name +
                      "' without a when() guard requires trusted code",
                  "sema");
  }
  return f->type;
}

const Type* Sema::CheckCast(Expr* e) {
  const Type* src = CheckExpr(e->a);
  const Type* dst = e->cast_type;
  if (src->IsError() || dst->IsError()) {
    return dst;
  }
  bool ok = false;
  if (dst->IsInteger() && (src->IsInteger() || src->IsPointer())) {
    ok = true;  // pointer-to-int reads are unchecked but create no pointer
  } else if (dst->IsPointer() && src->IsInteger()) {
    // Forging a pointer from an integer breaks soundness: trusted only.
    ok = e->a->IsNullConst() || dst->annot.trusted || trusted_depth_ > 0;
    if (ok && !e->a->IsNullConst()) {
      ++stats_.trusted_casts;
      e->in_trusted = true;
    }
    if (!ok) {
      diags_->Error(e->loc, "cast from int to pointer requires 'trusted'", "sema");
    }
    return dst;
  } else if (dst->IsPointer() && src->IsPointer()) {
    if (SameType(dst->pointee, src->pointee) || dst->pointee->IsVoid() ||
        src->pointee->IsVoid() || dst->pointee->IsChar() || src->pointee->IsChar()) {
      ok = true;  // char*/void* are the kernel's byte-view escape hatches
    } else if (dst->annot.trusted || src->annot.trusted || trusted_depth_ > 0) {
      ok = true;
      ++stats_.trusted_casts;
      e->in_trusted = true;
    } else {
      diags_->Error(e->loc,
                    "cast between incompatible pointer types " + TypeToString(src) + " -> " +
                        TypeToString(dst) + " requires 'trusted'",
                    "sema");
      return dst;
    }
  } else if (dst->IsPointer() && src->IsArray() && SameType(dst->pointee, src->elem)) {
    ok = true;
  } else if (dst->IsVoid()) {
    ok = true;  // (void)expr discards
  } else if (dst->IsInteger() && src->IsInteger()) {
    ok = true;
  }
  if (!ok) {
    diags_->Error(e->loc,
                  "illegal cast " + TypeToString(src) + " -> " + TypeToString(dst), "sema");
  }
  return dst;
}

const Type* Sema::CheckCall(Expr* e) {
  // Direct call through a function name?
  const Type* fty = nullptr;
  if (e->a->kind == ExprKind::kIdent) {
    auto it = func_map_.find(e->a->str_val);
    if (it != func_map_.end()) {
      e->a->type = it->second->type;
      e->a->sym = nullptr;
      e->a->str_val = it->second->name;
      fty = it->second->type;
      MarkTrusted(e->a);
    }
  }
  if (fty == nullptr) {
    const Type* callee = CheckExpr(e->a);
    if (callee->IsFuncPointer()) {
      fty = callee->pointee;
    } else if (callee->IsFunc()) {
      fty = callee;
    } else {
      if (!callee->IsError()) {
        diags_->Error(e->loc, "call of non-function " + TypeToString(callee), "sema");
      }
      for (Expr* arg : e->args) {
        CheckExpr(arg);
      }
      return prog_->NewType(TypeKind::kError);
    }
  }
  size_t nparams = fty->params.size();
  if (e->args.size() < nparams || (e->args.size() > nparams && !fty->varargs)) {
    diags_->Error(e->loc,
                  "call supplies " + std::to_string(e->args.size()) + " arguments, expected " +
                      std::to_string(nparams) + (fty->varargs ? "+" : ""),
                  "sema");
  }
  for (size_t i = 0; i < e->args.size(); ++i) {
    CheckExpr(e->args[i]);
    if (i < nparams) {
      CheckCompat(fty->params[i], e->args[i], e->args[i]->loc, "argument");
    }
  }
  return fty->ret;
}

const Type* Sema::CheckBinary(Expr* e) {
  const Type* a = CheckExpr(e->a);
  const Type* b = CheckExpr(e->b);
  if (a->IsError() || b->IsError()) {
    return prog_->NewType(TypeKind::kError);
  }
  switch (e->bin_op) {
    case BinOp::kAdd:
      if (a->IsPointer() && b->IsInteger()) {
        return a;
      }
      if (a->IsInteger() && b->IsPointer()) {
        return b;
      }
      if (a->IsArray() && b->IsInteger()) {
        Type* p = prog_->PtrTo(a->elem);
        return p;
      }
      break;
    case BinOp::kSub:
      if (a->IsPointer() && b->IsInteger()) {
        return a;
      }
      if (a->IsPointer() && b->IsPointer()) {
        return prog_->IntType();
      }
      break;
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kGt:
    case BinOp::kLe:
    case BinOp::kGe:
      if ((a->IsPointer() || a->IsInteger() || a->IsFunc()) &&
          (b->IsPointer() || b->IsInteger() || b->IsFunc())) {
        FoldConst(e);
        return prog_->IntType();
      }
      break;
    case BinOp::kLogAnd:
    case BinOp::kLogOr:
      if ((a->IsPointer() || a->IsInteger()) && (b->IsPointer() || b->IsInteger())) {
        FoldConst(e);
        return prog_->IntType();
      }
      break;
    default:
      break;
  }
  if (a->IsInteger() && b->IsInteger()) {
    FoldConst(e);
    return prog_->IntType();
  }
  diags_->Error(e->loc,
                "invalid operands to binary operator: " + TypeToString(a) + " and " +
                    TypeToString(b),
                "sema");
  return prog_->NewType(TypeKind::kError);
}

const Type* Sema::CheckAssign(Expr* e) {
  const Type* lhs = CheckExpr(e->a);
  CheckExpr(e->b);
  if (!IsLvalue(e->a)) {
    diags_->Error(e->loc, "assignment target is not an lvalue", "sema");
  }
  if (lhs != nullptr && (lhs->IsRecord() || lhs->IsArray())) {
    diags_->Error(e->loc, "whole-record/array assignment is not supported; use memcpy", "sema");
  }
  if (e->assign_op == BinOp::kNone) {
    CheckCompat(lhs, e->b, e->loc, "assignment");
  } else {
    // Compound assignment: lhs op= rhs. Pointers only support += / -=.
    if (lhs->IsPointer()) {
      if (e->assign_op != BinOp::kAdd && e->assign_op != BinOp::kSub) {
        diags_->Error(e->loc, "invalid compound assignment on pointer", "sema");
      } else if (e->b->type != nullptr && !e->b->type->IsInteger()) {
        diags_->Error(e->loc, "pointer += requires integer operand", "sema");
      }
    } else if (!lhs->IsInteger() ||
               (e->b->type != nullptr && !e->b->type->IsInteger())) {
      diags_->Error(e->loc, "compound assignment requires integer operands", "sema");
    }
  }
  return lhs;
}

const Type* Sema::CheckExpr(Expr* e) {
  if (e == nullptr) {
    return prog_->NewType(TypeKind::kError);
  }
  if (e->type != nullptr) {
    return e->type;  // already checked (annotation expressions)
  }
  MarkTrusted(e);
  const Type* t = nullptr;
  switch (e->kind) {
    case ExprKind::kIntLit:
      e->is_const = true;
      t = prog_->IntType();
      break;
    case ExprKind::kStrLit: {
      Type* p = prog_->PtrTo(prog_->CharType());
      p->annot.bounds = BoundsKind::kNullterm;
      t = p;
      break;
    }
    case ExprKind::kNull: {
      Type* p = prog_->PtrTo(prog_->VoidType());
      p->annot.opt = true;
      t = p;
      break;
    }
    case ExprKind::kIdent: {
      auto ec = prog_->enum_consts.find(e->str_val);
      if (ec != prog_->enum_consts.end()) {
        e->int_val = ec->second;
        e->is_const = true;
        t = prog_->IntType();
        break;
      }
      Symbol* sym = Lookup(e->str_val);
      if (sym != nullptr) {
        e->sym = sym;
        t = sym->type;
        break;
      }
      auto fn = func_map_.find(e->str_val);
      if (fn != func_map_.end()) {
        t = fn->second->type;  // function designator
        break;
      }
      diags_->Error(e->loc, "use of undeclared identifier '" + std::string(e->str_val) + "'",
                    "sema");
      t = prog_->NewType(TypeKind::kError);
      break;
    }
    case ExprKind::kUnary: {
      const Type* a = CheckExpr(e->a);
      if (e->un_op == UnOp::kLogNot) {
        if (!a->IsInteger() && !a->IsPointer() && !a->IsError()) {
          diags_->Error(e->loc, "'!' requires scalar operand", "sema");
        }
      } else if (!a->IsInteger() && !a->IsError()) {
        diags_->Error(e->loc, "unary operator requires integer operand", "sema");
      }
      FoldConst(e);
      t = prog_->IntType();
      break;
    }
    case ExprKind::kBinary:
      t = CheckBinary(e);
      break;
    case ExprKind::kAssign:
      t = CheckAssign(e);
      break;
    case ExprKind::kCond: {
      CheckExpr(e->a);
      const Type* b = CheckExpr(e->b);
      const Type* c = CheckExpr(e->c);
      if (b->IsPointer()) {
        t = b;
      } else if (c->IsPointer()) {
        t = c;
      } else if (b->IsFunc()) {
        t = prog_->PtrTo(b);  // `cond ? f : g` over function designators
      } else if (c->IsFunc()) {
        t = prog_->PtrTo(c);
      } else {
        t = prog_->IntType();
      }
      break;
    }
    case ExprKind::kCall:
      t = CheckCall(e);
      break;
    case ExprKind::kIndex: {
      const Type* base = CheckExpr(e->a);
      const Type* idx = CheckExpr(e->b);
      if (!idx->IsInteger() && !idx->IsError()) {
        diags_->Error(e->loc, "array index must be integer", "sema");
      }
      if (base->IsArray()) {
        t = base->elem;
      } else if (base->IsPointer()) {
        if (base->pointee->IsVoid()) {
          diags_->Error(e->loc, "cannot index void*", "sema");
          t = prog_->NewType(TypeKind::kError);
        } else {
          t = base->pointee;
        }
      } else {
        if (!base->IsError()) {
          diags_->Error(e->loc, "subscripted value is not array or pointer", "sema");
        }
        t = prog_->NewType(TypeKind::kError);
      }
      break;
    }
    case ExprKind::kMember:
      t = CheckMember(e);
      break;
    case ExprKind::kDeref: {
      const Type* a = CheckExpr(e->a);
      if (a->IsPointer()) {
        if (a->pointee->IsVoid()) {
          diags_->Error(e->loc, "cannot dereference void*", "sema");
          t = prog_->NewType(TypeKind::kError);
        } else {
          t = a->pointee;
        }
      } else {
        if (!a->IsError()) {
          diags_->Error(e->loc, "cannot dereference non-pointer " + TypeToString(a), "sema");
        }
        t = prog_->NewType(TypeKind::kError);
      }
      break;
    }
    case ExprKind::kAddrOf: {
      const Type* a = CheckExpr(e->a);
      if (!IsLvalue(e->a)) {
        diags_->Error(e->loc, "cannot take address of rvalue", "sema");
      }
      if (e->a->kind == ExprKind::kIdent && e->a->sym != nullptr) {
        e->a->sym->address_taken = true;
      }
      t = prog_->PtrTo(a);
      break;
    }
    case ExprKind::kCast:
      t = CheckCast(e);
      break;
    case ExprKind::kSizeof: {
      const Type* target = e->cast_type;
      if (target == nullptr) {
        target = CheckExpr(e->a);
      }
      e->int_val = TypeSize(target);
      e->is_const = true;
      t = prog_->IntType();
      break;
    }
    case ExprKind::kIncDec: {
      const Type* a = CheckExpr(e->a);
      if (!IsLvalue(e->a)) {
        diags_->Error(e->loc, "++/-- requires an lvalue", "sema");
      }
      if (!a->IsInteger() && !a->IsPointer() && !a->IsError()) {
        diags_->Error(e->loc, "++/-- requires integer or pointer", "sema");
      }
      t = a;
      break;
    }
  }
  e->type = t;
  return t;
}

}  // namespace ivy
