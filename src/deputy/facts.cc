#include "src/deputy/facts.h"

namespace ivy {

std::string CanonKey(const Expr* e) {
  if (e == nullptr) {
    return "";
  }
  switch (e->kind) {
    case ExprKind::kIdent:
      if (e->sym != nullptr) {
        return "v" + std::to_string(reinterpret_cast<uintptr_t>(e->sym));
      }
      return "fn:" + std::string(e->str_val);
    case ExprKind::kMember: {
      std::string base = CanonKey(e->a);
      if (base.empty()) {
        return "";
      }
      return base + (e->is_arrow ? "->" : ".") + std::string(e->str_val);
    }
    case ExprKind::kDeref: {
      std::string base = CanonKey(e->a);
      return base.empty() ? "" : "*" + base;
    }
    case ExprKind::kIndex: {
      if (e->b != nullptr && e->b->is_const) {
        std::string base = CanonKey(e->a);
        if (!base.empty()) {
          return base + "[" + std::to_string(e->b->int_val) + "]";
        }
      }
      return "";
    }
    case ExprKind::kAddrOf: {
      std::string base = CanonKey(e->a);
      return base.empty() ? "" : "&" + base;
    }
    case ExprKind::kCast:
      return CanonKey(e->a);
    default:
      return "";
  }
}

void CollectModifiedSymbolsExpr(const Expr* e, std::set<const Symbol*>* out) {
  if (e == nullptr) {
    return;
  }
  if (e->kind == ExprKind::kAssign || e->kind == ExprKind::kIncDec) {
    if (e->a != nullptr && e->a->kind == ExprKind::kIdent && e->a->sym != nullptr) {
      out->insert(e->a->sym);
    }
  }
  if (e->kind == ExprKind::kAddrOf && e->a != nullptr && e->a->kind == ExprKind::kIdent &&
      e->a->sym != nullptr) {
    out->insert(e->a->sym);  // may be modified through the pointer
  }
  CollectModifiedSymbolsExpr(e->a, out);
  CollectModifiedSymbolsExpr(e->b, out);
  CollectModifiedSymbolsExpr(e->c, out);
  for (const Expr* arg : e->args) {
    CollectModifiedSymbolsExpr(arg, out);
  }
}

void CollectModifiedSymbols(const Stmt* s, std::set<const Symbol*>* out) {
  if (s == nullptr) {
    return;
  }
  CollectModifiedSymbolsExpr(s->expr, out);
  CollectModifiedSymbolsExpr(s->cond, out);
  CollectModifiedSymbolsExpr(s->step, out);
  if (s->decl != nullptr) {
    CollectModifiedSymbolsExpr(s->decl->init, out);
    if (s->decl->sym != nullptr) {
      out->insert(s->decl->sym);
    }
  }
  CollectModifiedSymbols(s->init, out);
  CollectModifiedSymbols(s->then_stmt, out);
  CollectModifiedSymbols(s->else_stmt, out);
  for (const Stmt* child : s->body) {
    CollectModifiedSymbols(child, out);
  }
}

void FactEnv::Push() { scopes_.emplace_back(); }

void FactEnv::Pop() {
  if (scopes_.size() > 1) {
    scopes_.pop_back();
  }
}

void FactEnv::AddRange(const Symbol* i, int64_t lo, const Symbol* hi_sym, int64_t hi_const) {
  if (!enabled_) {
    return;
  }
  scopes_.back().ranges.push_back(RangeFact{i, lo, hi_sym, hi_const});
}

void FactEnv::AddNonNull(const std::string& key) {
  if (!enabled_ || key.empty()) {
    return;
  }
  scopes_.back().nonnull.insert(key);
}

void FactEnv::AddDominatingCheck(const std::string& key) {
  if (!enabled_ || key.empty()) {
    return;
  }
  scopes_.back().checks.insert(key);
}

bool FactEnv::HasDominatingCheck(const std::string& key) const {
  if (!enabled_ || key.empty()) {
    return false;
  }
  for (const Scope& s : scopes_) {
    if (s.checks.count(key) != 0) {
      return true;
    }
  }
  return false;
}

void FactEnv::InvalidateSymbol(const Symbol* sym) {
  if (!enabled_ || sym == nullptr) {
    return;
  }
  std::string key = "v" + std::to_string(reinterpret_cast<uintptr_t>(sym));
  for (Scope& s : scopes_) {
    for (size_t i = 0; i < s.ranges.size();) {
      if (s.ranges[i].var == sym || s.ranges[i].hi_sym == sym) {
        s.ranges.erase(s.ranges.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
    // Any fact whose key mentions this symbol's key dies.
    auto purge = [&key](std::set<std::string>* set) {
      for (auto it = set->begin(); it != set->end();) {
        if (it->find(key) != std::string::npos) {
          it = set->erase(it);
        } else {
          ++it;
        }
      }
    };
    purge(&s.nonnull);
    purge(&s.checks);
  }
}

void FactEnv::InvalidateMemory() {
  if (!enabled_) {
    return;
  }
  // Facts about memory (deref / member keys) may be stale; facts about plain
  // locals survive (their value cannot change through a store or call).
  auto purge = [](std::set<std::string>* set) {
    for (auto it = set->begin(); it != set->end();) {
      if (it->find("->") != std::string::npos || it->find('*') != std::string::npos ||
          it->find('.') != std::string::npos || it->find('[') != std::string::npos) {
        it = set->erase(it);
      } else {
        ++it;
      }
    }
  };
  for (Scope& s : scopes_) {
    purge(&s.nonnull);
    purge(&s.checks);
  }
}

const FactEnv::RangeFact* FactEnv::FindRange(const Symbol* var) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    for (const RangeFact& r : it->ranges) {
      if (r.var == var) {
        return &r;
      }
    }
  }
  return nullptr;
}

bool FactEnv::KnownNonNull(const Expr* e) const {
  if (!enabled_ || e == nullptr) {
    return false;
  }
  if (e->kind == ExprKind::kAddrOf || e->kind == ExprKind::kStrLit) {
    return true;  // addresses of lvalues and string literals are never null
  }
  if (e->kind == ExprKind::kCast) {
    return KnownNonNull(e->a);
  }
  if (e->type != nullptr && e->type->IsArray()) {
    return true;  // array lvalue decays to its own (valid) address
  }
  std::string key = CanonKey(e);
  if (key.empty()) {
    return false;
  }
  for (const Scope& s : scopes_) {
    if (s.nonnull.count(key) != 0) {
      return true;
    }
  }
  return false;
}

bool FactEnv::KnownInRange(const Expr* idx, const Expr* count) const {
  if (!enabled_ || idx == nullptr || count == nullptr) {
    return false;
  }
  // Constant index vs constant count.
  if (idx->is_const && count->is_const) {
    return idx->int_val >= 0 && idx->int_val < count->int_val;
  }
  if (idx->kind != ExprKind::kIdent || idx->sym == nullptr) {
    return false;
  }
  const RangeFact* r = FindRange(idx->sym);
  if (r == nullptr || r->lo < 0) {
    return false;
  }
  // Range [lo, hi): need hi <= count.
  if (count->is_const) {
    return r->hi_sym == nullptr && r->hi_const <= count->int_val;
  }
  if (count->kind == ExprKind::kIdent && count->sym != nullptr) {
    return r->hi_sym == count->sym;
  }
  return false;
}

bool FactEnv::KnownInConstRange(const Expr* idx, int64_t len) const {
  if (!enabled_ || idx == nullptr) {
    return false;
  }
  if (idx->is_const) {
    return idx->int_val >= 0 && idx->int_val < len;
  }
  if (idx->kind != ExprKind::kIdent || idx->sym == nullptr) {
    return false;
  }
  const RangeFact* r = FindRange(idx->sym);
  return r != nullptr && r->lo >= 0 && r->hi_sym == nullptr && r->hi_const <= len;
}

}  // namespace ivy
