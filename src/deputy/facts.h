// Deputy's static discharge engine (§2.1).
//
// Deputy checks most operations statically and defers the rest to run time.
// This module is the static half: a flow-scoped environment of facts derived
// from loop headers (`for (i = 0; i < n; i++)`), branch conditions
// (`if (p) ...`), and dominating checks already emitted in the same region.
// The lowerer asks it whether a null/bounds check is provably redundant; if
// so the check is *discharged* (counted, not emitted) — this is what keeps
// the bandwidth benchmarks of Table 1 near 1.00 while latency paths, whose
// pointer uses are scattered, keep their run-time checks.
//
// Pipeline integration: registered as the "deputy" ToolPass (see
// src/tool/passes.cc) — surfaces CheckStats as metrics and the deputy
// diagnostics as unified findings after lowering has run.
#ifndef SRC_DEPUTY_FACTS_H_
#define SRC_DEPUTY_FACTS_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/mc/ast.h"

namespace ivy {

// Canonical key for a pointer-valued expression, used to match facts and
// dominating checks. Returns "" when the expression is too complex to track.
std::string CanonKey(const Expr* e);

// Collects every Symbol assigned (or ++/--'d, or address-taken) anywhere in
// `s`. Used to validate that a loop induction variable and its bound are
// loop-invariant before trusting a range fact inside the body.
void CollectModifiedSymbols(const Stmt* s, std::set<const Symbol*>* out);
void CollectModifiedSymbolsExpr(const Expr* e, std::set<const Symbol*>* out);

// Per-check-kind discharge statistics (the A1 ablation data).
struct CheckStats {
  int64_t nonnull_emitted = 0;
  int64_t nonnull_discharged = 0;
  int64_t bounds_emitted = 0;
  int64_t bounds_discharged = 0;
  int64_t when_emitted = 0;
  int64_t nt_emitted = 0;
  int64_t callsite_emitted = 0;
  int64_t callsite_discharged = 0;
  int64_t trusted_skipped = 0;

  int64_t TotalEmitted() const {
    return nonnull_emitted + bounds_emitted + when_emitted + nt_emitted + callsite_emitted;
  }
  int64_t TotalDischarged() const {
    return nonnull_discharged + bounds_discharged + callsite_discharged;
  }
};

class FactEnv {
 public:
  explicit FactEnv(bool enabled) : enabled_(enabled) {}

  // Lexically scoped fact frames; pushed at loop bodies and branch arms.
  void Push();
  void Pop();

  // `i` ranges over [lo, hi) inside the current scope. Exactly one of
  // hi_sym / hi_const is meaningful (hi_sym == nullptr means constant).
  void AddRange(const Symbol* i, int64_t lo, const Symbol* hi_sym, int64_t hi_const);

  // The pointer expression with canonical key `key` is non-null here.
  void AddNonNull(const std::string& key);

  // A check with this exact key has already executed on every path to here.
  void AddDominatingCheck(const std::string& key);
  bool HasDominatingCheck(const std::string& key) const;

  // Kills facts that mention `s` (called on assignment to s).
  void InvalidateSymbol(const Symbol* s);
  // Kills deref-based facts (called on stores through pointers and calls).
  void InvalidateMemory();

  // True if `e` is provably non-null: address-of, known fact, or a
  // dominating check on the same key.
  bool KnownNonNull(const Expr* e) const;

  // True if index expression `idx` provably lies in [0, count) where `count`
  // is the Deputy count expression of the accessed pointer (a constant or an
  // Ident). Handles the canonical `for (i = 0; i < n; i++) a[i]` pattern.
  bool KnownInRange(const Expr* idx, const Expr* count) const;

  // Constant-range variant for fixed arrays: idx in [0, len).
  bool KnownInConstRange(const Expr* idx, int64_t len) const;

 private:
  struct RangeFact {
    const Symbol* var = nullptr;
    int64_t lo = 0;
    const Symbol* hi_sym = nullptr;
    int64_t hi_const = 0;
  };
  struct Scope {
    std::vector<RangeFact> ranges;
    std::set<std::string> nonnull;
    std::set<std::string> checks;
  };

  const RangeFact* FindRange(const Symbol* var) const;

  bool enabled_;
  std::vector<Scope> scopes_{1};
};

}  // namespace ivy

#endif  // SRC_DEPUTY_FACTS_H_
