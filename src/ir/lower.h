// AST -> IR lowering, including Deputy run-time check insertion (§2.1).
//
// The lowerer is where hybrid checking happens: for every pointer/array/union
// access it consults the FactEnv (static discharge); checks it cannot prove
// are emitted as explicit check instructions. With `deputy` disabled nothing
// is emitted at all — erasure semantics. Pointer-typed stores always lower to
// kStorePtr so the CCount runtime can be switched on per-run without
// re-lowering (the instruction behaves identically to kStore when CCount is
// off).
#ifndef SRC_IR_LOWER_H_
#define SRC_IR_LOWER_H_

#include <string>
#include <vector>

#include "src/deputy/facts.h"
#include "src/ir/ir.h"
#include "src/mc/ast.h"
#include "src/mc/sema.h"
#include "src/support/diag.h"

namespace ivy {

struct LowerOptions {
  bool deputy = true;     // emit Deputy checks
  bool discharge = true;  // enable static discharge (A1 ablation knob)
};

class Lowerer {
 public:
  Lowerer(const Program* prog, const Sema* sema, DiagEngine* diags, LowerOptions opts);

  // Lowers the whole program. Reports errors (e.g. calls to undefined
  // functions) to the DiagEngine.
  IrModule Lower();

  const CheckStats& check_stats() const { return check_stats_; }

 private:
  struct LValue {
    int addr = -1;           // register holding the address
    uint8_t size = 8;        // access size in bytes
    const Type* type = nullptr;
    bool is_ptr = false;     // the slot holds a pointer (CCount)
  };

  // Module layout.
  void LayoutGlobals(IrModule* m);
  void CollectPtrOffsets(const Type* t, int64_t base, std::vector<int64_t>* out);

  // Function lowering.
  void LowerFunc(const FuncDecl* fn, IrFunc* out);
  int NewReg();
  int NewBlock();
  void SetBlock(int b);
  Instr& Emit(Op op, SourceLoc loc);
  int EmitConst(int64_t v, SourceLoc loc);
  // Operand-safe emission helpers: operands must be fully evaluated before
  // the consuming instruction is appended (Emit() references are invalidated
  // by any later Emit, so never interleave).
  int EmitBin2(BinOp op, int a, int b, SourceLoc loc);
  int EmitAddImm(int a, int64_t imm, SourceLoc loc);
  void EmitJump(int target, SourceLoc loc);
  void EmitBranch(int cond_reg, int then_b, int else_b, SourceLoc loc);
  int64_t AllocSlot(const Type* t);

  // Statements.
  void LowerStmt(const Stmt* s);
  void LowerFor(const Stmt* s);
  void LowerIf(const Stmt* s);

  // Expressions.
  int LowerExpr(const Expr* e);
  int LowerRValue(const Expr* e);  // LowerExpr + array decay
  LValue LowerLValue(const Expr* e);
  int LowerCall(const Expr* e);
  int LowerShortCircuit(const Expr* e);
  int LowerCond(const Expr* e);
  int LowerIncDec(const Expr* e);
  int EmitLoad(const LValue& lv, SourceLoc loc);
  void EmitStore(const LValue& lv, int value, SourceLoc loc);

  // Deputy check generation. `base_reg` is the address of the record whose
  // fields are in scope for field-resolved annotation expressions (or -1).
  int EvalAnnotExpr(const Expr* e, int base_reg);
  void EmitNonNull(const Expr* ptr_expr, int ptr_reg, SourceLoc loc);
  // Check for opt -> non-opt pointer conversions (assignments, inits).
  void EmitNarrowing(const Type* dst, const Expr* src, int value_reg, SourceLoc loc);
  void EmitIndexChecks(const Expr* base_expr, int base_reg, const Expr* idx_expr, int idx_reg,
                       SourceLoc loc);
  void EmitWhenCheck(const Expr* member_expr, const LValue& union_lv, SourceLoc loc);
  void EmitCallSiteChecks(const FuncDecl* callee, const Type* fty, const Expr* call,
                          const std::vector<int>& arg_regs);
  bool DeputyOn(const Expr* e) const;
  // Returns the annotation record base register for a pointer expression
  // rooted at a member access (loads the record base), or -1.
  int AnnotBaseFor(const Expr* ptr_expr);
  // CCount RTTI: the allocation type id implied by assigning/casting an
  // allocator result to `t` (a pointer type), or -1 when unknown.
  static int AllocTypeIdFor(const Type* t);

  const Program* prog_;
  const Sema* sema_;
  DiagEngine* diags_;
  LowerOptions opts_;
  IrModule* module_ = nullptr;

  // Per-function state.
  IrFunc* fn_ = nullptr;
  const FuncDecl* decl_ = nullptr;
  int cur_block_ = 0;
  int next_reg_ = 0;
  int64_t frame_top_ = 0;
  std::vector<int> break_stack_;
  std::vector<int> continue_stack_;
  FactEnv facts_{true};
  CheckStats check_stats_;
  int delayed_depth_ = 0;
  // Allocation-site RTTI hint for the innermost kmalloc-family call being
  // lowered (set from the cast target or assignment destination type).
  int alloc_type_hint_ = -1;
};

}  // namespace ivy

#endif  // SRC_IR_LOWER_H_
