#include "src/ir/lower.h"

#include <algorithm>

namespace ivy {

namespace {

// VM memory map constants (shared with the VM; see src/vm/vm.h).
constexpr uint64_t kGlobalBase = 4096;

uint8_t AccessSize(const Type* t) { return t->IsChar() ? 1 : 8; }

bool IsAllocBuiltinName(const std::string& name) {
  return name == "kmalloc" || name == "vmalloc" || name == "alloc_page_raw";
}

}  // namespace

Lowerer::Lowerer(const Program* prog, const Sema* sema, DiagEngine* diags, LowerOptions opts)
    : prog_(prog), sema_(sema), diags_(diags), opts_(opts), facts_(opts.discharge) {}

IrModule Lowerer::Lower() {
  IrModule m;
  module_ = &m;
  LayoutGlobals(&m);
  int max_id = 0;
  for (const auto& [name, fn] : sema_->func_map()) {
    max_id = std::max(max_id, fn->func_id + 1);
  }
  m.funcs.resize(static_cast<size_t>(max_id));
  for (const auto& [name, fn] : sema_->func_map()) {
    if (fn->func_id < 0) {
      continue;
    }
    IrFunc& out = m.funcs[static_cast<size_t>(fn->func_id)];
    out.decl = fn;
    if (fn->body != nullptr) {
      LowerFunc(fn, &out);
    }
  }
  m.checks_emitted = check_stats_.TotalEmitted();
  m.checks_discharged = check_stats_.TotalDischarged();
  module_ = nullptr;
  return m;
}

void Lowerer::CollectPtrOffsets(const Type* t, int64_t base, std::vector<int64_t>* out) {
  switch (t->kind) {
    case TypeKind::kPointer:
      out->push_back(base);
      return;
    case TypeKind::kArray: {
      int64_t esz = TypeSize(t->elem);
      for (int64_t i = 0; i < t->array_len; ++i) {
        CollectPtrOffsets(t->elem, base + i * esz, out);
      }
      return;
    }
    case TypeKind::kRecord: {
      for (const RecordField& f : t->record->fields) {
        CollectPtrOffsets(f.type, base + f.offset, out);
      }
      return;
    }
    default:
      return;
  }
}

void Lowerer::LayoutGlobals(IrModule* m) {
  uint64_t addr = kGlobalBase;
  for (const VarDecl* g : prog_->globals) {
    if (g->sym == nullptr) {
      continue;
    }
    int64_t align = TypeAlign(g->type);
    int64_t size = TypeSize(g->type);
    addr = (addr + static_cast<uint64_t>(align) - 1) / static_cast<uint64_t>(align) *
           static_cast<uint64_t>(align);
    GlobalSlot slot;
    slot.decl = g;
    slot.addr = addr;
    slot.size = size;
    if (g->type->IsRecord()) {
      slot.type_id = g->type->record->type_id;
    }
    CollectPtrOffsets(g->type, 0, &slot.ptr_offsets);
    g->sym->global_addr = static_cast<int64_t>(addr);
    m->globals.push_back(slot);
    addr += static_cast<uint64_t>(size);
    // Intern string-literal initializers so the VM can resolve them.
    if (g->init != nullptr && g->init->kind == ExprKind::kStrLit) {
      m->string_pool.emplace_back(g->init->str_val);
    }
  }
  m->globals_end = addr;  // string addresses assigned lazily, after this
}

void Lowerer::LowerFunc(const FuncDecl* fn, IrFunc* out) {
  fn_ = out;
  decl_ = fn;
  next_reg_ = 0;
  frame_top_ = 0;
  cur_block_ = 0;
  break_stack_.clear();
  continue_stack_.clear();
  facts_ = FactEnv(opts_.discharge);
  out->blocks.clear();
  out->blocks.emplace_back();

  for (Symbol* p : fn->params) {
    int64_t off = AllocSlot(p->type);
    p->frame_offset = off;
    out->param_offsets.push_back(off);
    out->param_sizes.push_back(AccessSize(p->type));
    if (p->type->IsPointer()) {
      out->ptr_slots.push_back(off);
    }
  }
  LowerStmt(fn->body);
  // Implicit return (void functions or fall-through).
  Instr& ret = Emit(Op::kRet, fn->loc);
  ret.a = -1;
  out->num_regs = next_reg_;
  out->frame_size = (frame_top_ + 15) / 16 * 16;
  const_cast<FuncDecl*>(fn)->frame_size = out->frame_size;
  fn_ = nullptr;
  decl_ = nullptr;
}

int Lowerer::NewReg() { return next_reg_++; }

int Lowerer::NewBlock() {
  fn_->blocks.emplace_back();
  return static_cast<int>(fn_->blocks.size()) - 1;
}

void Lowerer::SetBlock(int b) { cur_block_ = b; }

Instr& Lowerer::Emit(Op op, SourceLoc loc) {
  Block& blk = fn_->blocks[static_cast<size_t>(cur_block_)];
  blk.instrs.emplace_back();
  Instr& i = blk.instrs.back();
  i.op = op;
  i.loc = loc;
  return i;
}

int Lowerer::EmitConst(int64_t v, SourceLoc loc) {
  Instr& i = Emit(Op::kConst, loc);
  i.dst = NewReg();
  i.imm = v;
  return i.dst;
}

int Lowerer::EmitBin2(BinOp op, int a, int b, SourceLoc loc) {
  Instr& i = Emit(Op::kBin, loc);
  i.bin = op;
  i.dst = NewReg();
  i.a = a;
  i.b = b;
  return i.dst;
}

int Lowerer::EmitAddImm(int a, int64_t imm, SourceLoc loc) {
  int c = EmitConst(imm, loc);
  return EmitBin2(BinOp::kAdd, a, c, loc);
}

void Lowerer::EmitJump(int target, SourceLoc loc) {
  Instr& i = Emit(Op::kJump, loc);
  i.imm = target;
}

void Lowerer::EmitBranch(int cond_reg, int then_b, int else_b, SourceLoc loc) {
  Instr& i = Emit(Op::kBranch, loc);
  i.a = cond_reg;
  i.imm = then_b;
  i.imm2 = else_b;
}

int64_t Lowerer::AllocSlot(const Type* t) {
  int64_t align = TypeAlign(t);
  int64_t size = TypeSize(t);
  frame_top_ = (frame_top_ + align - 1) / align * align;
  int64_t off = frame_top_;
  frame_top_ += size;
  return off;
}

bool Lowerer::DeputyOn(const Expr* e) const {
  if (!opts_.deputy) {
    return false;
  }
  if (e != nullptr && e->in_trusted) {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Lowerer::LowerStmt(const Stmt* s) {
  if (s == nullptr) {
    return;
  }
  switch (s->kind) {
    case StmtKind::kExpr:
      LowerExpr(s->expr);
      return;
    case StmtKind::kDecl: {
      VarDecl* d = s->decl;
      if (d->sym == nullptr) {
        return;
      }
      d->sym->frame_offset = AllocSlot(d->type);
      if (d->type->IsPointer()) {
        fn_->ptr_slots.push_back(d->sym->frame_offset);
      }
      if (d->init != nullptr) {
        int saved_hint = alloc_type_hint_;
        alloc_type_hint_ = AllocTypeIdFor(d->type);
        int v = LowerRValue(d->init);
        alloc_type_hint_ = saved_hint;
        EmitNarrowing(d->type, d->init, v, d->loc);
        Instr& addr = Emit(Op::kFrameAddr, d->loc);
        addr.dst = NewReg();
        addr.imm = d->sym->frame_offset;
        LValue lv;
        lv.addr = addr.dst;
        lv.size = AccessSize(d->type);
        lv.type = d->type;
        lv.is_ptr = d->type->IsPointer();
        EmitStore(lv, v, d->loc);
        if (d->init->IsNullConst()) {
          // no fact
        } else if (d->type->IsPointer() && facts_.KnownNonNull(d->init)) {
          facts_.AddNonNull("v" + std::to_string(reinterpret_cast<uintptr_t>(d->sym)));
        }
      }
      return;
    }
    case StmtKind::kIf:
      LowerIf(s);
      return;
    case StmtKind::kWhile: {
      int cond_b = NewBlock();
      int body_b = NewBlock();
      int exit_b = NewBlock();
      EmitJump(cond_b, s->loc);
      SetBlock(cond_b);
      int c = LowerRValue(s->cond);
      EmitBranch(c, body_b, exit_b, s->loc);
      SetBlock(body_b);
      break_stack_.push_back(exit_b);
      continue_stack_.push_back(cond_b);
      facts_.Push();
      // `while (p)` / `while (*s)` style conditions give a non-null fact.
      if (s->cond->type != nullptr && s->cond->type->IsPointer()) {
        facts_.AddNonNull(CanonKey(s->cond));
      }
      LowerStmt(s->then_stmt);
      facts_.Pop();
      break_stack_.pop_back();
      continue_stack_.pop_back();
      EmitJump(cond_b, s->loc);
      SetBlock(exit_b);
      facts_.InvalidateMemory();
      return;
    }
    case StmtKind::kDoWhile: {
      int body_b = NewBlock();
      int cond_b = NewBlock();
      int exit_b = NewBlock();
      EmitJump(body_b, s->loc);
      SetBlock(body_b);
      break_stack_.push_back(exit_b);
      continue_stack_.push_back(cond_b);
      facts_.Push();
      LowerStmt(s->then_stmt);
      facts_.Pop();
      break_stack_.pop_back();
      continue_stack_.pop_back();
      EmitJump(cond_b, s->loc);
      SetBlock(cond_b);
      int c = LowerRValue(s->cond);
      EmitBranch(c, body_b, exit_b, s->loc);
      SetBlock(exit_b);
      facts_.InvalidateMemory();
      return;
    }
    case StmtKind::kFor:
      LowerFor(s);
      return;
    case StmtKind::kReturn: {
      Instr* ret = nullptr;
      if (s->expr != nullptr) {
        int v = LowerRValue(s->expr);
        ret = &Emit(Op::kRet, s->loc);
        ret->a = v;
      } else {
        ret = &Emit(Op::kRet, s->loc);
        ret->a = -1;
      }
      // `imm` carries the open delayed-scope count so the VM can unwind.
      ret->imm = delayed_depth_;
      SetBlock(NewBlock());  // unreachable continuation
      return;
    }
    case StmtKind::kBreak:
      if (!break_stack_.empty()) {
        EmitJump(break_stack_.back(), s->loc);
        SetBlock(NewBlock());
      }
      return;
    case StmtKind::kContinue:
      if (!continue_stack_.empty()) {
        EmitJump(continue_stack_.back(), s->loc);
        SetBlock(NewBlock());
      }
      return;
    case StmtKind::kBlock:
    case StmtKind::kSeq:
    case StmtKind::kTrusted:
      for (const Stmt* child : s->body) {
        LowerStmt(child);
      }
      return;
    case StmtKind::kDelayedFree: {
      Emit(Op::kDelayedPush, s->loc);
      ++delayed_depth_;
      for (const Stmt* child : s->body) {
        LowerStmt(child);
      }
      --delayed_depth_;
      Emit(Op::kDelayedPop, s->loc);
      return;
    }
    case StmtKind::kEmpty:
      return;
  }
}

namespace {

// True if every path through `s` leaves the enclosing region (return, break,
// continue, panic). Used for the `if (!p) return;` narrowing idiom.
bool AlwaysExits(const Stmt* s) {
  if (s == nullptr) {
    return false;
  }
  switch (s->kind) {
    case StmtKind::kReturn:
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      return true;
    case StmtKind::kExpr:
      return s->expr != nullptr && s->expr->kind == ExprKind::kCall &&
             s->expr->a->kind == ExprKind::kIdent && s->expr->a->str_val == "panic";
    case StmtKind::kBlock:
    case StmtKind::kTrusted:
      return !s->body.empty() && AlwaysExits(s->body.back());
    case StmtKind::kIf:
      return s->else_stmt != nullptr && AlwaysExits(s->then_stmt) &&
             AlwaysExits(s->else_stmt);
    default:
      return false;
  }
}

}  // namespace

void Lowerer::LowerIf(const Stmt* s) {
  int c = LowerRValue(s->cond);
  int then_b = NewBlock();
  int else_b = s->else_stmt != nullptr ? NewBlock() : -1;
  int exit_b = NewBlock();
  EmitBranch(c, then_b, else_b >= 0 ? else_b : exit_b, s->loc);
  SetBlock(then_b);
  facts_.Push();
  // Condition-derived facts for the then-branch.
  const Expr* cond = s->cond;
  if (cond->type != nullptr && cond->type->IsPointer()) {
    facts_.AddNonNull(CanonKey(cond));
  } else if (cond->kind == ExprKind::kBinary && cond->bin_op == BinOp::kNe &&
             cond->b->IsNullConst()) {
    facts_.AddNonNull(CanonKey(cond->a));
  }
  LowerStmt(s->then_stmt);
  facts_.Pop();
  EmitJump(exit_b, s->loc);
  if (else_b >= 0) {
    SetBlock(else_b);
    facts_.Push();
    LowerStmt(s->else_stmt);
    facts_.Pop();
    EmitJump(exit_b, s->loc);
  }
  SetBlock(exit_b);
  // The kernel's guard idiom: `if (!p) return;` / `if (p == null) return;`
  // establishes p != null for the remainder of the region.
  if (s->else_stmt == nullptr && AlwaysExits(s->then_stmt)) {
    const Expr* guarded = nullptr;
    if (cond->kind == ExprKind::kUnary && cond->un_op == UnOp::kLogNot &&
        cond->a->type != nullptr && cond->a->type->IsPointer()) {
      guarded = cond->a;
    } else if (cond->kind == ExprKind::kBinary && cond->bin_op == BinOp::kEq &&
               cond->b->IsNullConst()) {
      guarded = cond->a;
    }
    if (guarded != nullptr) {
      facts_.AddNonNull(CanonKey(guarded));
    }
  }
}

void Lowerer::LowerFor(const Stmt* s) {
  facts_.Push();
  LowerStmt(s->init);

  // Detect the canonical counted loop: for (i = c0; i < HI; i++) with i and
  // HI unmodified in the body -> range fact i in [c0, HI) for the body.
  const Symbol* ivar = nullptr;
  int64_t lo = 0;
  const Symbol* hi_sym = nullptr;
  int64_t hi_const = 0;
  bool have_range = false;
  if (s->init != nullptr && s->cond != nullptr && s->step != nullptr) {
    const Expr* init_val = nullptr;
    const Symbol* init_sym = nullptr;
    if (s->init->kind == StmtKind::kDecl && s->init->decl != nullptr &&
        s->init->decl->sym != nullptr) {
      init_sym = s->init->decl->sym;
      init_val = s->init->decl->init;
    } else if (s->init->kind == StmtKind::kExpr && s->init->expr != nullptr &&
               s->init->expr->kind == ExprKind::kAssign &&
               s->init->expr->assign_op == BinOp::kNone &&
               s->init->expr->a->kind == ExprKind::kIdent) {
      init_sym = s->init->expr->a->sym;
      init_val = s->init->expr->b;
    }
    const Expr* cond = s->cond;
    bool cond_ok = cond->kind == ExprKind::kBinary &&
                   (cond->bin_op == BinOp::kLt || cond->bin_op == BinOp::kLe) &&
                   cond->a->kind == ExprKind::kIdent && cond->a->sym == init_sym;
    const Expr* step = s->step;
    bool step_ok =
        (step->kind == ExprKind::kIncDec && step->is_inc && step->a->kind == ExprKind::kIdent &&
         step->a->sym == init_sym) ||
        (step->kind == ExprKind::kAssign && step->assign_op == BinOp::kAdd &&
         step->a->kind == ExprKind::kIdent && step->a->sym == init_sym && step->b->is_const &&
         step->b->int_val == 1);
    if (init_sym != nullptr && init_val != nullptr && init_val->is_const && cond_ok && step_ok) {
      std::set<const Symbol*> modified;
      CollectModifiedSymbols(s->then_stmt, &modified);
      const Expr* bound = cond->b;
      bool bound_ok = false;
      if (bound->is_const) {
        hi_const = bound->int_val + (cond->bin_op == BinOp::kLe ? 1 : 0);
        hi_sym = nullptr;
        bound_ok = true;
      } else if (cond->bin_op == BinOp::kLt && bound->kind == ExprKind::kIdent &&
                 bound->sym != nullptr && modified.count(bound->sym) == 0 &&
                 !bound->sym->address_taken) {
        hi_sym = bound->sym;
        bound_ok = true;
      }
      if (bound_ok && modified.count(init_sym) == 0 && !init_sym->address_taken &&
          init_val->int_val >= 0) {
        ivar = init_sym;
        lo = init_val->int_val;
        have_range = true;
      }
    }
  }

  int cond_b = NewBlock();
  int body_b = NewBlock();
  int step_b = NewBlock();
  int exit_b = NewBlock();
  EmitJump(cond_b, s->loc);
  SetBlock(cond_b);
  if (s->cond != nullptr) {
    int c = LowerRValue(s->cond);
    EmitBranch(c, body_b, exit_b, s->loc);
  } else {
    EmitJump(body_b, s->loc);
  }
  SetBlock(body_b);
  break_stack_.push_back(exit_b);
  continue_stack_.push_back(step_b);
  facts_.Push();
  if (have_range) {
    facts_.AddRange(ivar, lo, hi_sym, hi_const);
  }
  LowerStmt(s->then_stmt);
  facts_.Pop();
  break_stack_.pop_back();
  continue_stack_.pop_back();
  EmitJump(step_b, s->loc);
  SetBlock(step_b);
  if (s->step != nullptr) {
    LowerExpr(s->step);
  }
  EmitJump(cond_b, s->loc);
  SetBlock(exit_b);
  facts_.Pop();
  facts_.InvalidateMemory();
}

// ---------------------------------------------------------------------------
// Deputy check emission
// ---------------------------------------------------------------------------

int Lowerer::EvalAnnotExpr(const Expr* e, int base_reg) {
  if (e == nullptr) {
    return EmitConst(0, SourceLoc{});
  }
  if (e->field != nullptr && e->kind == ExprKind::kIdent) {
    // Field-scoped annotation: load field from the record at base_reg.
    if (base_reg < 0) {
      diags_->Error(e->loc, "cannot evaluate field-scoped annotation here", "deputy");
      return EmitConst(0, e->loc);
    }
    int addr = EmitAddImm(base_reg, e->field->offset, e->loc);
    Instr& load = Emit(Op::kLoad, e->loc);
    load.dst = NewReg();
    load.a = addr;
    load.size = AccessSize(e->field->type);
    return load.dst;
  }
  switch (e->kind) {
    case ExprKind::kIntLit:
      return EmitConst(e->int_val, e->loc);
    case ExprKind::kBinary: {
      int a = EvalAnnotExpr(e->a, base_reg);
      int b = EvalAnnotExpr(e->b, base_reg);
      return EmitBin2(e->bin_op, a, b, e->loc);
    }
    default:
      // Locals/params/globals and arbitrary expressions: normal lowering.
      return LowerRValue(const_cast<Expr*>(e));
  }
}

void Lowerer::EmitNarrowing(const Type* dst, const Expr* src, int value_reg, SourceLoc loc) {
  if (!DeputyOn(src) || dst == nullptr || !dst->IsPointer() || dst->annot.opt ||
      dst->annot.trusted) {
    return;
  }
  if (src == nullptr || src->type == nullptr || !src->type->IsPointer() ||
      !src->type->annot.opt) {
    return;  // source already non-null by type
  }
  if (facts_.KnownNonNull(src)) {
    ++check_stats_.nonnull_discharged;
    return;
  }
  Instr& chk = Emit(Op::kCheckNonNull, loc);
  chk.a = value_reg;
  ++check_stats_.nonnull_emitted;
}

int Lowerer::AnnotBaseFor(const Expr* ptr_expr) {
  // For `s->data` the annotation scope base is the address of *s: re-lower
  // the base. (The base was just evaluated for the access itself; one extra
  // evaluation is the price of keeping lowering single-pass. Checks are only
  // emitted when static discharge failed, so this is on the slow path.)
  if (ptr_expr->kind == ExprKind::kMember) {
    if (ptr_expr->is_arrow) {
      return LowerRValue(ptr_expr->a);
    }
    LValue lv = LowerLValue(ptr_expr->a);
    return lv.addr;
  }
  return -1;
}

void Lowerer::EmitNonNull(const Expr* ptr_expr, int ptr_reg, SourceLoc loc) {
  if (!DeputyOn(ptr_expr)) {
    return;
  }
  if (ptr_expr->type != nullptr && ptr_expr->type->IsPointer() &&
      ptr_expr->type->annot.trusted) {
    ++check_stats_.trusted_skipped;
    return;
  }
  // Deputy's default pointer type is non-null: only `opt` pointers need a
  // use-site check. Non-opt pointers are guarded at narrowing points
  // (assignments and call arguments converting opt -> non-opt) instead.
  if (ptr_expr->type != nullptr && ptr_expr->type->IsPointer() &&
      !ptr_expr->type->annot.opt) {
    return;
  }
  if (facts_.KnownNonNull(ptr_expr)) {
    ++check_stats_.nonnull_discharged;
    return;
  }
  std::string key = "nn:" + CanonKey(ptr_expr);
  if (key != "nn:" && facts_.HasDominatingCheck(key)) {
    ++check_stats_.nonnull_discharged;
    return;
  }
  Instr& chk = Emit(Op::kCheckNonNull, loc);
  chk.a = ptr_reg;
  ++check_stats_.nonnull_emitted;
  facts_.AddDominatingCheck(key);
}

void Lowerer::EmitIndexChecks(const Expr* base_expr, int base_reg, const Expr* idx_expr,
                              int idx_reg, SourceLoc loc) {
  if (!DeputyOn(base_expr)) {
    return;
  }
  const Type* bt = base_expr->type;
  if (bt == nullptr) {
    return;
  }
  if (bt->IsArray()) {
    // Fixed array: bounds [0, len).
    if (facts_.KnownInConstRange(idx_expr, bt->array_len)) {
      ++check_stats_.bounds_discharged;
      return;
    }
    int len_reg = EmitConst(bt->array_len, loc);
    Instr& chk = Emit(Op::kCheckBounds, loc);
    chk.a = idx_reg;
    chk.b = -1;  // lo = 0
    chk.c = len_reg;
    chk.imm = 1;
    ++check_stats_.bounds_emitted;
    return;
  }
  if (!bt->IsPointer()) {
    return;
  }
  if (bt->annot.trusted) {
    ++check_stats_.trusted_skipped;
    return;
  }
  EmitNonNull(base_expr, base_reg, loc);
  switch (bt->annot.bounds) {
    case BoundsKind::kSingle: {
      // p[i] on a singleton pointer: only index 0 is legal.
      if (idx_expr->is_const && idx_expr->int_val == 0) {
        ++check_stats_.bounds_discharged;
        return;
      }
      int one_reg = EmitConst(1, loc);
      Instr& chk = Emit(Op::kCheckBounds, loc);
      chk.a = idx_reg;
      chk.b = -1;
      chk.c = one_reg;
      chk.imm = 1;
      ++check_stats_.bounds_emitted;
      return;
    }
    case BoundsKind::kCount: {
      const Expr* count = bt->annot.count;
      if (facts_.KnownInRange(idx_expr, count)) {
        ++check_stats_.bounds_discharged;
        return;
      }
      int base_rec = AnnotBaseFor(base_expr);
      int count_reg = EvalAnnotExpr(count, base_rec);
      Instr& chk = Emit(Op::kCheckBounds, loc);
      chk.a = idx_reg;
      chk.b = -1;
      chk.c = count_reg;
      chk.imm = 1;
      ++check_stats_.bounds_emitted;
      return;
    }
    case BoundsKind::kBound: {
      int base_rec = AnnotBaseFor(base_expr);
      int lo_reg = EvalAnnotExpr(bt->annot.lo, base_rec);
      int hi_reg = EvalAnnotExpr(bt->annot.hi, base_rec);
      // Address-based check: lo <= p + i*w && p + (i+1)*w <= hi.
      int64_t w = TypeSize(bt->pointee);
      int w_reg = EmitConst(w, loc);
      int scaled = EmitBin2(BinOp::kMul, idx_reg, w_reg, loc);
      int addr = EmitBin2(BinOp::kAdd, base_reg, scaled, loc);
      Instr& chk = Emit(Op::kCheckBounds, loc);
      chk.a = addr;
      chk.b = lo_reg;
      chk.c = hi_reg;
      chk.imm = w;
      ++check_stats_.bounds_emitted;
      return;
    }
    case BoundsKind::kNullterm: {
      // Only index 0 may be touched directly on a nullterm pointer; iteration
      // advances the pointer itself (checked at the arithmetic).
      if (!(idx_expr->is_const && idx_expr->int_val == 0)) {
        diags_->Warning(loc, "indexing a nullterm pointer; only [0] is checked", "deputy");
      }
      return;
    }
  }
}

void Lowerer::EmitWhenCheck(const Expr* member_expr, const LValue& union_lv, SourceLoc loc) {
  const RecordField* f = member_expr->field;
  if (f == nullptr || f->when == nullptr || !DeputyOn(member_expr)) {
    return;
  }
  // Parent struct base = union address - union field offset in the parent.
  int parent_base = -1;
  const Expr* union_expr = member_expr->a;
  if (union_expr->kind == ExprKind::kMember && union_expr->field != nullptr) {
    int off_reg = EmitConst(union_expr->field->offset, loc);
    parent_base = EmitBin2(BinOp::kSub, union_lv.addr, off_reg, loc);
  }
  int guard = EvalAnnotExpr(f->when, parent_base);
  Instr& chk = Emit(Op::kCheckWhen, loc);
  chk.a = guard;
  ++check_stats_.when_emitted;
}

void Lowerer::EmitCallSiteChecks(const FuncDecl* /*callee*/, const Type* fty, const Expr* call,
                                 const std::vector<int>& arg_regs) {
  if (!DeputyOn(call)) {
    return;
  }
  for (size_t i = 0; i < fty->params.size() && i < call->args.size(); ++i) {
    const Type* formal = fty->params[i];
    if (!formal->IsPointer() || formal->annot.trusted) {
      continue;
    }
    const Expr* actual = call->args[i];
    if (actual->IsNullConst()) {
      continue;  // null is legal for opt formals; checked below otherwise
    }
    // Narrowing check: an opt actual flowing into a non-opt formal.
    if (!formal->annot.opt && actual->type != nullptr && actual->type->IsPointer() &&
        actual->type->annot.opt) {
      EmitNonNull(actual, arg_regs[i], actual->loc);
    }
    if (formal->annot.bounds != BoundsKind::kCount || formal->annot.count == nullptr) {
      continue;
    }
    // required = value of the count expression; supported shapes: constant or
    // a reference to a sibling parameter.
    const Expr* cexpr = formal->annot.count;
    int required = -1;
    int64_t required_const = -1;
    if (cexpr->is_const) {
      required_const = cexpr->int_val;
    } else if (cexpr->kind == ExprKind::kIdent && cexpr->sym != nullptr &&
               cexpr->sym->kind == SymKind::kParam &&
               cexpr->sym->param_index >= 0 &&
               static_cast<size_t>(cexpr->sym->param_index) < arg_regs.size()) {
      required = arg_regs[static_cast<size_t>(cexpr->sym->param_index)];
    } else {
      continue;  // unsupported count shape at call sites
    }
    // capacity of the actual argument.
    const Type* at = actual->type;
    int64_t cap_const = -1;
    const Expr* cap_expr = nullptr;
    if (at == nullptr) {
      continue;
    }
    if (at->IsArray()) {
      cap_const = at->array_len;
    } else if (at->IsPointer()) {
      if (at->annot.trusted || at->annot.bounds == BoundsKind::kNullterm) {
        continue;  // unknown/unchecked capacity
      }
      if (at->annot.bounds == BoundsKind::kSingle) {
        cap_const = 1;
      } else if (at->annot.bounds == BoundsKind::kCount) {
        cap_expr = at->annot.count;
        if (cap_expr != nullptr && cap_expr->is_const) {
          cap_const = cap_expr->int_val;
          cap_expr = nullptr;
        }
      } else {
        continue;
      }
    } else {
      continue;
    }
    // Static discharge: constant required vs constant capacity.
    if (required_const >= 0 && cap_const >= 0) {
      if (required_const <= cap_const) {
        ++check_stats_.callsite_discharged;
      } else {
        diags_->Error(actual->loc,
                      "argument provides " + std::to_string(cap_const) +
                          " elements but callee requires " + std::to_string(required_const),
                      "deputy");
      }
      continue;
    }
    // Same-symbol discharge: f(buf, n) where buf is count(n) of the same n.
    if (required >= 0 && cap_expr != nullptr && cap_expr->kind == ExprKind::kIdent &&
        cexpr->kind == ExprKind::kIdent) {
      const Expr* actual_count_src = call->args[static_cast<size_t>(
          cexpr->sym->param_index)];
      if (actual_count_src != nullptr && actual_count_src->kind == ExprKind::kIdent &&
          cap_expr->sym != nullptr && actual_count_src->sym == cap_expr->sym) {
        ++check_stats_.callsite_discharged;
        continue;
      }
    }
    int cap_reg;
    if (cap_const >= 0) {
      cap_reg = EmitConst(cap_const, actual->loc);
    } else {
      int base_rec = AnnotBaseFor(actual);
      cap_reg = EvalAnnotExpr(cap_expr, base_rec);
    }
    int req_reg = required >= 0 ? required : EmitConst(required_const, actual->loc);
    Instr& chk = Emit(Op::kCheckBounds, actual->loc);
    chk.a = req_reg;
    chk.b = -1;
    chk.c = cap_reg;
    chk.imm = 0;  // 0 <= required && required <= capacity
    ++check_stats_.callsite_emitted;
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

int Lowerer::EmitLoad(const LValue& lv, SourceLoc loc) {
  Instr& i = Emit(Op::kLoad, loc);
  i.dst = NewReg();
  i.a = lv.addr;
  i.size = lv.size;
  return i.dst;
}

void Lowerer::EmitStore(const LValue& lv, int value, SourceLoc loc) {
  Instr& i = Emit(lv.is_ptr ? Op::kStorePtr : Op::kStore, loc);
  i.a = lv.addr;
  i.b = value;
  i.size = lv.size;
}

Lowerer::LValue Lowerer::LowerLValue(const Expr* e) {
  LValue lv;
  lv.type = e->type;
  lv.size = e->type != nullptr ? AccessSize(e->type) : 8;
  lv.is_ptr = e->type != nullptr && e->type->IsPointer();
  switch (e->kind) {
    case ExprKind::kIdent: {
      const Symbol* sym = e->sym;
      if (sym == nullptr) {
        diags_->Error(e->loc, "cannot take lvalue of '" + std::string(e->str_val) + "'", "lower");
        lv.addr = EmitConst(0, e->loc);
        return lv;
      }
      if (sym->kind == SymKind::kGlobal) {
        Instr& i = Emit(Op::kGlobalAddr, e->loc);
        i.dst = NewReg();
        i.imm = sym->global_addr;
        lv.addr = i.dst;
      } else {
        Instr& i = Emit(Op::kFrameAddr, e->loc);
        i.dst = NewReg();
        i.imm = sym->frame_offset;
        lv.addr = i.dst;
      }
      return lv;
    }
    case ExprKind::kDeref: {
      int p = LowerRValue(e->a);
      EmitNonNull(e->a, p, e->loc);
      // Nullterm pointers may always read their current element.
      lv.addr = p;
      return lv;
    }
    case ExprKind::kIndex: {
      const Type* bt = e->a->type;
      int base;
      if (bt != nullptr && bt->IsArray()) {
        LValue alv = LowerLValue(e->a);
        base = alv.addr;
      } else {
        base = LowerRValue(e->a);
      }
      int idx = LowerRValue(e->b);
      EmitIndexChecks(e->a, base, e->b, idx, e->loc);
      int64_t w = TypeSize(e->type);
      int w_reg = EmitConst(w, e->loc);
      int scaled = EmitBin2(BinOp::kMul, idx, w_reg, e->loc);
      lv.addr = EmitBin2(BinOp::kAdd, base, scaled, e->loc);
      return lv;
    }
    case ExprKind::kMember: {
      int base;
      LValue union_lv;
      if (e->is_arrow) {
        base = LowerRValue(e->a);
        EmitNonNull(e->a, base, e->loc);
      } else {
        LValue alv = LowerLValue(e->a);
        base = alv.addr;
      }
      union_lv.addr = base;
      if (e->field != nullptr && e->field->when != nullptr) {
        EmitWhenCheck(e, union_lv, e->loc);
      }
      int64_t off = e->field != nullptr ? e->field->offset : 0;
      lv.addr = off != 0 ? EmitAddImm(base, off, e->loc) : base;
      return lv;
    }
    case ExprKind::kCast: {
      // Lvalue cast appears in trusted code only; address of operand.
      LValue inner = LowerLValue(e->a);
      lv.addr = inner.addr;
      return lv;
    }
    default:
      diags_->Error(e->loc, "expression is not an lvalue", "lower");
      lv.addr = EmitConst(0, e->loc);
      return lv;
  }
}

int Lowerer::LowerShortCircuit(const Expr* e) {
  // a && b / a || b with proper short-circuit evaluation.
  int result_slot = NewReg();  // virtual: we use blocks + moves
  int rhs_b = NewBlock();
  int short_b = NewBlock();
  int exit_b = NewBlock();
  int a = LowerRValue(e->a);
  // Normalize to 0/1.
  int zero_a = EmitConst(0, e->loc);
  int norm_a = EmitBin2(BinOp::kNe, a, zero_a, e->loc);
  if (e->bin_op == BinOp::kLogAnd) {
    EmitBranch(norm_a, rhs_b, short_b, e->loc);
  } else {
    EmitBranch(norm_a, short_b, rhs_b, e->loc);
  }
  SetBlock(short_b);
  Instr& cshort = Emit(Op::kConst, e->loc);
  cshort.dst = result_slot;
  cshort.imm = e->bin_op == BinOp::kLogAnd ? 0 : 1;
  EmitJump(exit_b, e->loc);
  SetBlock(rhs_b);
  int b = LowerRValue(e->b);
  int zero_b = EmitConst(0, e->loc);
  Instr& nb = Emit(Op::kBin, e->loc);
  nb.bin = BinOp::kNe;
  nb.dst = result_slot;
  nb.a = b;
  nb.b = zero_b;
  EmitJump(exit_b, e->loc);
  SetBlock(exit_b);
  return result_slot;
}

int Lowerer::LowerCond(const Expr* e) {
  int result = NewReg();
  int then_b = NewBlock();
  int else_b = NewBlock();
  int exit_b = NewBlock();
  int c = LowerRValue(e->a);
  EmitBranch(c, then_b, else_b, e->loc);
  SetBlock(then_b);
  int tv = LowerRValue(e->b);
  Instr& mt = Emit(Op::kMove, e->loc);
  mt.dst = result;
  mt.a = tv;
  EmitJump(exit_b, e->loc);
  SetBlock(else_b);
  int ev = LowerRValue(e->c);
  Instr& me = Emit(Op::kMove, e->loc);
  me.dst = result;
  me.a = ev;
  EmitJump(exit_b, e->loc);
  SetBlock(exit_b);
  return result;
}

int Lowerer::LowerIncDec(const Expr* e) {
  LValue lv = LowerLValue(e->a);
  int old = EmitLoad(lv, e->loc);
  int64_t delta = 1;
  if (e->a->type != nullptr && e->a->type->IsPointer()) {
    delta = TypeSize(e->a->type->pointee);
    // Nullterm iteration: s++ must not step past the terminator.
    if (DeputyOn(e) && e->a->type->annot.bounds == BoundsKind::kNullterm && e->is_inc) {
      Instr& chk = Emit(Op::kCheckNtAdvance, e->loc);
      chk.a = old;
      ++check_stats_.nt_emitted;
    }
  }
  int delta_reg = EmitConst(delta, e->loc);
  int updated = EmitBin2(e->is_inc ? BinOp::kAdd : BinOp::kSub, old, delta_reg, e->loc);
  EmitStore(lv, updated, e->loc);
  if (e->a->kind == ExprKind::kIdent) {
    facts_.InvalidateSymbol(e->a->sym);
  } else {
    facts_.InvalidateMemory();
  }
  return e->is_prefix ? updated : old;
}

int Lowerer::LowerCall(const Expr* e) {
  // Resolve the callee: builtin, direct, or indirect.
  const FuncDecl* callee = nullptr;
  if (e->a->kind == ExprKind::kIdent && e->a->sym == nullptr) {
    auto it = sema_->func_map().find(e->a->str_val);
    if (it != sema_->func_map().end()) {
      callee = it->second;
    }
  }
  const Type* fty = callee != nullptr ? callee->type
                    : (e->a->type != nullptr && e->a->type->IsFuncPointer())
                        ? e->a->type->pointee
                        : e->a->type;
  std::vector<int> arg_regs;
  arg_regs.reserve(e->args.size());
  for (const Expr* arg : e->args) {
    arg_regs.push_back(LowerRValue(arg));
  }
  if (fty != nullptr && fty->IsFunc()) {
    EmitCallSiteChecks(callee, fty, e, arg_regs);
  }
  facts_.InvalidateMemory();
  if (callee != nullptr && callee->is_builtin) {
    Instr& i = Emit(Op::kIntrinsic, e->loc);
    i.dst = NewReg();
    i.imm = callee->builtin_id;
    i.args = std::move(arg_regs);
    if (IsAllocBuiltinName(callee->name)) {
      i.alloc_type_id = alloc_type_hint_;
    }
    return i.dst;
  }
  if (callee != nullptr) {
    if (callee->body == nullptr) {
      // Extern function from another module: legal for static analysis
      // (incremental porting); the VM traps if the call actually executes.
      diags_->Warning(e->loc, "call to undefined function '" + callee->name + "'", "lower");
    }
    Instr& i = Emit(Op::kCall, e->loc);
    i.dst = NewReg();
    i.imm = callee->func_id;
    i.args = std::move(arg_regs);
    return i.dst;
  }
  // Indirect call through a function pointer value.
  int fp = LowerRValue(e->a);
  EmitNonNull(e->a, fp, e->loc);
  Instr& i = Emit(Op::kCallInd, e->loc);
  i.dst = NewReg();
  i.a = fp;
  i.args = std::move(arg_regs);
  return i.dst;
}

int Lowerer::LowerRValue(const Expr* e) {
  // Array lvalues decay to their address in value context.
  if (e->type != nullptr && e->type->IsArray()) {
    LValue lv = LowerLValue(e);
    return lv.addr;
  }
  return LowerExpr(e);
}

int Lowerer::LowerExpr(const Expr* e) {
  if (e == nullptr) {
    return EmitConst(0, SourceLoc{});
  }
  switch (e->kind) {
    case ExprKind::kIntLit:
      return EmitConst(e->int_val, e->loc);
    case ExprKind::kNull:
      return EmitConst(0, e->loc);
    case ExprKind::kStrLit: {
      Instr& i = Emit(Op::kStrConst, e->loc);
      i.dst = NewReg();
      i.imm = static_cast<int64_t>(module_->string_pool.size());
      module_->string_pool.emplace_back(e->str_val);
      return i.dst;
    }
    case ExprKind::kIdent: {
      if (e->is_const) {  // enum constant
        return EmitConst(e->int_val, e->loc);
      }
      if (e->sym == nullptr) {
        // Function designator -> function pointer constant.
        auto it = sema_->func_map().find(e->str_val);
        if (it != sema_->func_map().end()) {
          Instr& i = Emit(Op::kFuncConst, e->loc);
          i.dst = NewReg();
          i.imm = it->second->func_id;
          return i.dst;
        }
        return EmitConst(0, e->loc);
      }
      LValue lv = LowerLValue(e);
      return EmitLoad(lv, e->loc);
    }
    case ExprKind::kUnary: {
      int a = LowerRValue(e->a);
      Instr& i = Emit(Op::kUn, e->loc);
      i.un = e->un_op;
      i.dst = NewReg();
      i.a = a;
      return i.dst;
    }
    case ExprKind::kBinary: {
      if (e->bin_op == BinOp::kLogAnd || e->bin_op == BinOp::kLogOr) {
        return LowerShortCircuit(e);
      }
      // Pointer arithmetic scales by element size.
      const Type* at = e->a->type;
      const Type* bt = e->b->type;
      bool a_ptr = at != nullptr && (at->IsPointer() || at->IsArray());
      bool b_ptr = bt != nullptr && (bt->IsPointer() || bt->IsArray());
      int a = LowerRValue(e->a);
      int b = LowerRValue(e->b);
      if ((e->bin_op == BinOp::kAdd || e->bin_op == BinOp::kSub) && a_ptr && !b_ptr) {
        const Type* elem = at->IsPointer() ? at->pointee : at->elem;
        int64_t w = TypeSize(elem);
        // Nullterm advance check: s + 1 requires *s != 0.
        if (DeputyOn(e) && at->IsPointer() && at->annot.bounds == BoundsKind::kNullterm &&
            e->bin_op == BinOp::kAdd) {
          Instr& chk = Emit(Op::kCheckNtAdvance, e->loc);
          chk.a = a;
          ++check_stats_.nt_emitted;
        }
        if (w != 1) {
          int w_reg = EmitConst(w, e->loc);
          b = EmitBin2(BinOp::kMul, b, w_reg, e->loc);
        }
      }
      if (e->bin_op == BinOp::kSub && a_ptr && b_ptr) {
        const Type* elem = at->IsPointer() ? at->pointee : at->elem;
        int64_t w = TypeSize(elem);
        int diff = EmitBin2(BinOp::kSub, a, b, e->loc);
        if (w == 1) {
          return diff;
        }
        int w_reg = EmitConst(w, e->loc);
        return EmitBin2(BinOp::kDiv, diff, w_reg, e->loc);
      }
      return EmitBin2(e->bin_op, a, b, e->loc);
    }
    case ExprKind::kAssign: {
      int value;
      if (e->assign_op == BinOp::kNone) {
        // Allocation typing: p = (T*)kmalloc(...) / p = kmalloc(...).
        const Type* lt = e->a->type;
        int saved_hint = alloc_type_hint_;
        alloc_type_hint_ = AllocTypeIdFor(lt);
        value = LowerRValue(e->b);
        alloc_type_hint_ = saved_hint;
      } else {
        LValue lv0 = LowerLValue(e->a);
        int old = EmitLoad(lv0, e->loc);
        int rhs = LowerRValue(e->b);
        // Pointer += scales like pointer arithmetic.
        if (e->a->type != nullptr && e->a->type->IsPointer()) {
          int64_t w = TypeSize(e->a->type->pointee);
          if (DeputyOn(e) && e->a->type->annot.bounds == BoundsKind::kNullterm &&
              e->assign_op == BinOp::kAdd) {
            Instr& chk = Emit(Op::kCheckNtAdvance, e->loc);
            chk.a = old;
            ++check_stats_.nt_emitted;
          }
          if (w != 1) {
            int w_reg = EmitConst(w, e->loc);
            rhs = EmitBin2(BinOp::kMul, rhs, w_reg, e->loc);
          }
        }
        int updated = EmitBin2(e->assign_op, old, rhs, e->loc);
        EmitStore(lv0, updated, e->loc);
        if (e->a->kind == ExprKind::kIdent) {
          facts_.InvalidateSymbol(e->a->sym);
        } else {
          facts_.InvalidateMemory();
        }
        return updated;
      }
      EmitNarrowing(e->a->type, e->b, value, e->loc);
      LValue lv = LowerLValue(e->a);
      // Char stores truncate.
      if (lv.size == 1) {
        int mask_reg = EmitConst(0xff, e->loc);
        value = EmitBin2(BinOp::kBitAnd, value, mask_reg, e->loc);
      }
      EmitStore(lv, value, e->loc);
      if (e->a->kind == ExprKind::kIdent) {
        facts_.InvalidateSymbol(e->a->sym);
        if (e->a->type != nullptr && e->a->type->IsPointer() && facts_.KnownNonNull(e->b)) {
          facts_.AddNonNull(CanonKey(e->a));
        }
      } else {
        facts_.InvalidateMemory();
      }
      return value;
    }
    case ExprKind::kCond:
      return LowerCond(e);
    case ExprKind::kCall:
      return LowerCall(e);
    case ExprKind::kIndex:
    case ExprKind::kMember:
    case ExprKind::kDeref: {
      if (e->type != nullptr && e->type->IsRecord()) {
        // Record-valued access: its "value" is its address (used by nested
        // member paths; records are never loaded whole).
        LValue lv = LowerLValue(e);
        return lv.addr;
      }
      LValue lv = LowerLValue(e);
      return EmitLoad(lv, e->loc);
    }
    case ExprKind::kAddrOf: {
      LValue lv = LowerLValue(e->a);
      return lv.addr;
    }
    case ExprKind::kCast: {
      int saved_hint = alloc_type_hint_;
      alloc_type_hint_ = AllocTypeIdFor(e->cast_type);
      int v = LowerRValue(e->a);
      alloc_type_hint_ = saved_hint;
      if (e->cast_type != nullptr && e->cast_type->IsChar()) {
        int mask_reg = EmitConst(0xff, e->loc);
        return EmitBin2(BinOp::kBitAnd, v, mask_reg, e->loc);
      }
      return v;
    }
    case ExprKind::kSizeof:
      return EmitConst(e->int_val, e->loc);
    case ExprKind::kIncDec:
      return LowerIncDec(e);
  }
  return EmitConst(0, e->loc);
}

int Lowerer::AllocTypeIdFor(const Type* t) {
  if (t == nullptr || !t->IsPointer()) {
    return -1;
  }
  const Type* p = t->pointee;
  if (p->IsRecord()) {
    return p->record->type_id;
  }
  if (p->IsPointer()) {
    return -3;  // array of pointers: every word is a pointer
  }
  if (p->IsInteger() || p->IsVoid()) {
    return -2;  // pointer-free payload
  }
  return -1;
}

}  // namespace ivy
