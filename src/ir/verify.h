// IR structural verifier: every lowered function must satisfy the
// interpreter's assumptions (register indices in range, block targets valid,
// every block terminated, call targets well-formed). Run by tests after
// every corpus lowering; cheap enough to run in debug pipelines.
#ifndef SRC_IR_VERIFY_H_
#define SRC_IR_VERIFY_H_

#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace ivy {

// Returns a list of violations ("func:block:index: message"); empty = valid.
std::vector<std::string> VerifyModule(const IrModule& module);

}  // namespace ivy

#endif  // SRC_IR_VERIFY_H_
