#include "src/ir/verify.h"

#include "src/vm/builtins.h"

namespace ivy {

namespace {

bool IsTerminator(Op op) {
  return op == Op::kRet || op == Op::kJump || op == Op::kBranch || op == Op::kTrap;
}

}  // namespace

std::vector<std::string> VerifyModule(const IrModule& module) {
  std::vector<std::string> out;
  auto fail = [&out](const IrFunc& f, size_t b, size_t i, const std::string& msg) {
    out.push_back((f.decl != nullptr ? f.decl->name : "?") + ":b" + std::to_string(b) + ":" +
                  std::to_string(i) + ": " + msg);
  };
  for (const IrFunc& f : module.funcs) {
    if (f.decl == nullptr || f.blocks.empty()) {
      continue;  // extern / builtin
    }
    int nblocks = static_cast<int>(f.blocks.size());
    auto reg_ok = [&f](int r) { return r >= 0 && r < f.num_regs; };
    auto block_ok = [nblocks](int64_t b) { return b >= 0 && b < nblocks; };
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      const std::vector<Instr>& code = f.blocks[b].instrs;
      for (size_t i = 0; i < code.size(); ++i) {
        const Instr& in = code[i];
        // Operand registers must be allocated.
        if (in.dst >= f.num_regs) {
          fail(f, b, i, "dst register out of range");
        }
        for (int r : {in.a, in.b, in.c}) {
          if (r != -1 && !reg_ok(r)) {
            fail(f, b, i, "operand register out of range");
          }
        }
        for (int r : in.args) {
          if (!reg_ok(r)) {
            fail(f, b, i, "argument register out of range");
          }
        }
        switch (in.op) {
          case Op::kJump:
            if (!block_ok(in.imm)) {
              fail(f, b, i, "jump target out of range");
            }
            break;
          case Op::kBranch:
            if (!block_ok(in.imm) || !block_ok(in.imm2)) {
              fail(f, b, i, "branch target out of range");
            }
            if (in.a < 0) {
              fail(f, b, i, "branch without condition register");
            }
            break;
          case Op::kCall:
            if (in.imm < 0 || static_cast<size_t>(in.imm) >= module.funcs.size()) {
              fail(f, b, i, "call target id out of range");
            }
            break;
          case Op::kIntrinsic:
            if (in.imm < 0 || in.imm >= kNumBuiltins) {
              fail(f, b, i, "intrinsic id out of range");
            }
            break;
          case Op::kStrConst:
            if (in.imm < 0 || static_cast<size_t>(in.imm) >= module.string_pool.size()) {
              fail(f, b, i, "string pool index out of range");
            }
            break;
          case Op::kLoad:
          case Op::kStore:
          case Op::kStorePtr:
            if (in.size != 1 && in.size != 8) {
              fail(f, b, i, "access size must be 1 or 8");
            }
            break;
          default:
            break;
        }
        // No instruction may follow a terminator within a block.
        if (IsTerminator(in.op) && i + 1 < code.size()) {
          fail(f, b, i, "instruction after terminator");
        }
      }
    }
    // The entry block must exist and the function must end every reachable
    // block with a terminator (empty trailing blocks are legal: the VM
    // treats falling off the end as an implicit return).
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      const std::vector<Instr>& code = f.blocks[b].instrs;
      if (!code.empty() && !IsTerminator(code.back().op)) {
        fail(f, b, code.size() - 1, "block does not end in a terminator");
      }
    }
  }
  return out;
}

}  // namespace ivy
