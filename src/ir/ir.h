// Register-based IR executed by the Ivy VM.
//
// Lowering from the AST emits Deputy run-time checks (when the Deputy tool is
// enabled and static discharge fails) and marks pointer stores so the CCount
// runtime can maintain reference counts. With all tools disabled the same
// program lowers to exactly the unchecked instruction stream — the paper's
// "erasure semantics" (§1).
#ifndef SRC_IR_IR_H_
#define SRC_IR_IR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mc/ast.h"

namespace ivy {

enum class Op : uint8_t {
  kConst,       // r[dst] = imm
  kMove,        // r[dst] = r[a]
  kBin,         // r[dst] = r[a] <bin> r[b]
  kUn,          // r[dst] = <un> r[a]
  kLoad,        // r[dst] = mem[r[a]]  (size 1 or 8; 1-byte loads zero-extend)
  kStore,       // mem[r[a]] = r[b]    (size 1 or 8)
  kStorePtr,    // mem[r[a]] = r[b], 8 bytes; CCount reference-count update
  kFrameAddr,   // r[dst] = frame_base + imm
  kGlobalAddr,  // r[dst] = imm (absolute address of a global)
  kFuncConst,   // r[dst] = encoded function pointer for funcs[imm]
  kStrConst,    // r[dst] = address of string literal #imm
  kCall,        // r[dst] = funcs[imm](args...)
  kCallInd,     // r[dst] = (r[a])(args...)
  kIntrinsic,   // r[dst] = builtin #imm(args...)
  kRet,         // return r[a], or void if a < 0
  kJump,        // goto block imm
  kBranch,      // if r[a] != 0 goto block imm else goto block imm2
  kCheckNonNull,   // trap NullDeref if r[a] == 0
  kCheckBounds,    // trap Bounds unless r[b] <= r[a] && r[a] + imm <= r[c]
  kCheckWhen,      // trap UnionTag if r[a] == 0
  kCheckNtAdvance, // trap NtOverrun if mem[r[a]] (1 byte) == 0
  kCheckStack,     // trap StackOverflow if VM stack depth exceeds budget
  kDelayedPush,    // enter a delayed_free scope (CCount)
  kDelayedPop,     // leave it: run deferred frees + checks
  kTrap,           // unconditional trap; imm = TrapKind
};

// Why a check / trap fired. Also used for VM run results.
enum class TrapKind : int32_t {
  kNone = 0,
  kNullDeref,
  kBounds,
  kUnionTag,
  kNtOverrun,
  kDivByZero,
  kPanic,
  kAssertFail,
  kMightSleepAtomic,  // blocking call while interrupts disabled (BlockStop)
  kDeadlock,          // self-deadlock on a spinlock (single-CPU VM)
  kStackOverflow,
  kOutOfMemory,
  kBadIndirectCall,
  kUnreachable,
  kMemFault,  // wild access caught by the VM itself (the "hardware" trap)
  kTimeout,   // deterministic watchdog: too many instructions executed
};

const char* TrapKindName(TrapKind k);

struct Instr {
  Op op = Op::kTrap;
  int32_t dst = -1;
  int32_t a = -1;
  int32_t b = -1;
  int32_t c = -1;
  int64_t imm = 0;
  int64_t imm2 = 0;
  uint8_t size = 8;
  BinOp bin = BinOp::kNone;
  UnOp un = UnOp::kNeg;
  SourceLoc loc;
  std::vector<int32_t> args;  // call/intrinsic arguments
  // Allocation-site type id for kmalloc-family intrinsics (CCount RTTI) or
  // -2 for pointer-free payloads; unused otherwise.
  int32_t alloc_type_id = -1;
};

struct Block {
  std::vector<Instr> instrs;
};

// Pointer map entry: a pointer-typed slot within a frame (CCount
// track-locals mode) -- byte offset from frame base.
struct IrFunc {
  const FuncDecl* decl = nullptr;
  std::vector<Block> blocks;
  int num_regs = 0;
  int64_t frame_size = 0;
  std::vector<int64_t> param_offsets;    // frame offsets of parameters
  std::vector<uint8_t> param_sizes;      // store sizes (1 or 8)
  std::vector<int64_t> ptr_slots;        // frame offsets holding pointers

  // Total instruction count, for reports.
  int64_t InstrCount() const {
    int64_t n = 0;
    for (const Block& b : blocks) {
      n += static_cast<int64_t>(b.instrs.size());
    }
    return n;
  }
};

// Layout of one global variable in VM memory.
struct GlobalSlot {
  const VarDecl* decl = nullptr;
  uint64_t addr = 0;
  int64_t size = 0;
  int type_id = -1;                // record type id if record-typed
  std::vector<int64_t> ptr_offsets;  // pointer-typed offsets (CCount)
};

// A lowered whole program.
struct IrModule {
  std::vector<IrFunc> funcs;  // indexed by FuncDecl::func_id
  std::vector<GlobalSlot> globals;
  std::vector<std::string> string_pool;
  std::vector<uint64_t> string_addrs;
  uint64_t globals_end = 0;  // first address after globals + rodata

  // Check-insertion statistics (Deputy A1 ablation).
  int64_t checks_emitted = 0;
  int64_t checks_discharged = 0;

  const IrFunc* FindFunc(const std::string& name) const {
    for (const IrFunc& f : funcs) {
      if (f.decl != nullptr && f.decl->name == name) {
        return &f;
      }
    }
    return nullptr;
  }

  // Renders a function's IR for debugging and golden tests.
  std::string Dump(const IrFunc& f) const;
};

}  // namespace ivy

#endif  // SRC_IR_IR_H_
