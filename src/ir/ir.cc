#include "src/ir/ir.h"

namespace ivy {

const char* TrapKindName(TrapKind k) {
  switch (k) {
    case TrapKind::kNone:
      return "none";
    case TrapKind::kNullDeref:
      return "null-dereference";
    case TrapKind::kBounds:
      return "bounds-violation";
    case TrapKind::kUnionTag:
      return "union-tag-violation";
    case TrapKind::kNtOverrun:
      return "nullterm-overrun";
    case TrapKind::kDivByZero:
      return "division-by-zero";
    case TrapKind::kPanic:
      return "kernel-panic";
    case TrapKind::kAssertFail:
      return "assertion-failure";
    case TrapKind::kMightSleepAtomic:
      return "might-sleep-while-atomic";
    case TrapKind::kDeadlock:
      return "spinlock-deadlock";
    case TrapKind::kStackOverflow:
      return "stack-overflow";
    case TrapKind::kOutOfMemory:
      return "out-of-memory";
    case TrapKind::kBadIndirectCall:
      return "bad-indirect-call";
    case TrapKind::kUnreachable:
      return "unreachable";
    case TrapKind::kMemFault:
      return "memory-fault";
    case TrapKind::kTimeout:
      return "watchdog-timeout";
  }
  return "?";
}

namespace {

const char* OpName(Op op) {
  switch (op) {
    case Op::kConst:
      return "const";
    case Op::kMove:
      return "move";
    case Op::kBin:
      return "bin";
    case Op::kUn:
      return "un";
    case Op::kLoad:
      return "load";
    case Op::kStore:
      return "store";
    case Op::kStorePtr:
      return "storep";
    case Op::kFrameAddr:
      return "frame";
    case Op::kGlobalAddr:
      return "global";
    case Op::kFuncConst:
      return "func";
    case Op::kStrConst:
      return "str";
    case Op::kCall:
      return "call";
    case Op::kCallInd:
      return "calli";
    case Op::kIntrinsic:
      return "intr";
    case Op::kRet:
      return "ret";
    case Op::kJump:
      return "jmp";
    case Op::kBranch:
      return "br";
    case Op::kCheckNonNull:
      return "chk.null";
    case Op::kCheckBounds:
      return "chk.bounds";
    case Op::kCheckWhen:
      return "chk.when";
    case Op::kCheckNtAdvance:
      return "chk.nt";
    case Op::kCheckStack:
      return "chk.stack";
    case Op::kDelayedPush:
      return "dfree.push";
    case Op::kDelayedPop:
      return "dfree.pop";
    case Op::kTrap:
      return "trap";
  }
  return "?";
}

}  // namespace

std::string IrModule::Dump(const IrFunc& f) const {
  std::string out = "func " + (f.decl != nullptr ? f.decl->name : "?") +
                    " regs=" + std::to_string(f.num_regs) +
                    " frame=" + std::to_string(f.frame_size) + "\n";
  for (size_t b = 0; b < f.blocks.size(); ++b) {
    out += "b" + std::to_string(b) + ":\n";
    for (const Instr& i : f.blocks[b].instrs) {
      out += "  ";
      out += OpName(i.op);
      if (i.dst >= 0) {
        out += " r" + std::to_string(i.dst);
      }
      if (i.a >= 0) {
        out += " a=r" + std::to_string(i.a);
      }
      if (i.b >= 0) {
        out += " b=r" + std::to_string(i.b);
      }
      if (i.c >= 0) {
        out += " c=r" + std::to_string(i.c);
      }
      if (i.imm != 0 || i.op == Op::kConst || i.op == Op::kJump || i.op == Op::kCall) {
        out += " imm=" + std::to_string(i.imm);
      }
      if (i.imm2 != 0) {
        out += " imm2=" + std::to_string(i.imm2);
      }
      if (!i.args.empty()) {
        out += " args=(";
        for (size_t k = 0; k < i.args.size(); ++k) {
          if (k != 0) {
            out += ",";
          }
          out += "r" + std::to_string(i.args[k]);
        }
        out += ")";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace ivy
