// The one timebase for every wall-clock measurement in the tree.
//
// Everything that times real elapsed time — the tracing layer, the bench
// harness, latency histograms — must go through MonotonicNowNs(), which is
// std::chrono::steady_clock and therefore immune to NTP slews and manual
// clock changes (a gettimeofday()-style timestamp can go *backwards*, which
// turns a latency sample into a ~2^64 ns outlier and a p99 into garbage).
//
// Audit note (kept here so it is not re-litigated): the VM-side benchmarks
// (src/hbench) deliberately measure *deterministic VM cycles*, not wall
// time, so they have no clock at all; the only wall-clock timing in the
// repo is bench/ and the tracing layer, both of which use these helpers.
#ifndef SRC_SUPPORT_CLOCK_H_
#define SRC_SUPPORT_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace ivy {

// Nanoseconds on an arbitrary-epoch monotonic clock. Only differences are
// meaningful; never compare against time-of-day.
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t MonotonicNowUs() { return MonotonicNowNs() / 1000; }

// Elapsed milliseconds since an earlier MonotonicNowNs() sample, as a
// double — the shape bench reporting wants.
inline double ElapsedMsSince(uint64_t start_ns) {
  return static_cast<double>(MonotonicNowNs() - start_ns) / 1e6;
}

}  // namespace ivy

#endif  // SRC_SUPPORT_CLOCK_H_
