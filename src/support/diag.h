// Diagnostics engine shared by the frontend and all analyses.
//
// The paper's tools (Deputy, CCount, BlockStop) report three flavours of output:
// hard errors (illegal programs), warnings (potential soundness violations that
// will be backed by run-time checks), and notes. We keep all of them so tests
// and benches can assert on exact counts.
#ifndef SRC_SUPPORT_DIAG_H_
#define SRC_SUPPORT_DIAG_H_

#include <string>
#include <vector>

#include "src/support/source.h"

namespace ivy {

enum class Severity {
  kNote,
  kWarning,
  kError,
};

// A single rendered diagnostic.
struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
  // Which tool produced it ("parse", "sema", "deputy", "ccount", "blockstop",
  // "locksafe", "stackcheck", "errcheck"). Used by reports and tests.
  std::string tool;
};

// Collects diagnostics for one compilation. Cheap to copy pointers to; owned
// by the driver and threaded through every pass.
class DiagEngine {
 public:
  explicit DiagEngine(const SourceManager* sm) : sm_(sm) {}

  void Error(SourceLoc loc, const std::string& msg, const std::string& tool = "sema");
  void Warning(SourceLoc loc, const std::string& msg, const std::string& tool = "sema");
  void Note(SourceLoc loc, const std::string& msg, const std::string& tool = "sema");

  int error_count() const { return errors_; }
  int warning_count() const { return warnings_; }
  bool ok() const { return errors_ == 0; }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  // Number of warnings produced by a given tool.
  int CountFor(const std::string& tool, Severity sev) const;

  // Renders all diagnostics, one per line, for logs and examples.
  std::string Render() const;

  // True if any diagnostic message contains `needle` (test helper).
  bool Contains(const std::string& needle) const;

 private:
  void Add(Severity sev, SourceLoc loc, const std::string& msg, const std::string& tool);

  const SourceManager* sm_;
  std::vector<Diagnostic> diags_;
  int errors_ = 0;
  int warnings_ = 0;
};

}  // namespace ivy

#endif  // SRC_SUPPORT_DIAG_H_
