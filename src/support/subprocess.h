// Minimal fork/exec helpers for the distributed-relink coordinator
// (tools/annolink spawning its worker processes). No shell, no pipes —
// workers inherit stdout/stderr and communicate through the store file.
#ifndef SRC_SUPPORT_SUBPROCESS_H_
#define SRC_SUPPORT_SUBPROCESS_H_

#include <sys/types.h>

#include <string>
#include <vector>

namespace ivy {

struct Subprocess {
  pid_t pid = -1;
};

// fork + execv. argv[0] is the binary path. Returns false (with *err) if
// the fork fails; an exec failure surfaces as exit status 127 from
// WaitProcess.
bool SpawnProcess(const std::vector<std::string>& argv, Subprocess* proc,
                  std::string* err);

// Blocks until the process exits. Returns true only on exit status 0;
// nonzero exits and signals set *err. Safe to call once per Subprocess.
bool WaitProcess(Subprocess* proc, std::string* err);

}  // namespace ivy

#endif  // SRC_SUPPORT_SUBPROCESS_H_
