// Strict integer parsing for untrusted textual inputs (CLI flags, address
// strings, JSON object keys used as indices).
//
// The std::atoi / strtol idioms these replace have three failure modes that
// repeatedly turned into bugs here: trailing junk silently ignored
// ("8abc" -> 8), garbage silently aliased onto 0 ("abc" -> 0 — which is a
// *valid* value for things like parameter indices), and out-of-range values
// silently clamped or wrapped. ParseInt64Strict accepts exactly the strings
// this codebase itself produces with std::to_string: an optional single '-',
// then decimal digits with no leading zeros (except "0" itself), nothing
// else — no whitespace, no '+', no hex. Anything else returns false and
// leaves *out untouched.
#ifndef SRC_SUPPORT_NUMBERS_H_
#define SRC_SUPPORT_NUMBERS_H_

#include <cstdint>
#include <string>

namespace ivy {

inline bool ParseInt64Strict(const std::string& s, int64_t min, int64_t max,
                             int64_t* out) {
  size_t i = 0;
  bool neg = false;
  if (i < s.size() && s[i] == '-') {
    neg = true;
    ++i;
  }
  if (i >= s.size()) {
    return false;  // empty, or a lone '-'
  }
  if (s[i] == '0' && s.size() > i + 1) {
    return false;  // leading zeros are not canonical ("007", "-01")
  }
  // Accumulate negatively: |INT64_MIN| > INT64_MAX, so the negative range
  // covers every representable magnitude without overflowing mid-parse.
  int64_t acc = 0;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c < '0' || c > '9') {
      return false;
    }
    int digit = c - '0';
    if (acc < (INT64_MIN + digit) / 10) {
      return false;  // would overflow
    }
    acc = acc * 10 - digit;
  }
  if (!neg) {
    if (acc == INT64_MIN) {
      return false;  // +9223372036854775808 is out of range
    }
    acc = -acc;
  }
  if (acc < min || acc > max) {
    return false;
  }
  *out = acc;
  return true;
}

// The common "small non-negative index" case (JSON param_points keys,
// ports): [0, max], canonical digits only.
inline bool ParseIndexStrict(const std::string& s, int64_t max, int* out) {
  int64_t v = 0;
  if (!ParseInt64Strict(s, 0, max, &v)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace ivy

#endif  // SRC_SUPPORT_NUMBERS_H_
