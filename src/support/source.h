// Source file management: file registry and source locations.
//
// Every token and AST node carries a SourceLoc so diagnostics can point at the
// offending Mini-C line, mirroring how Deputy reports errors against kernel sources.
#ifndef SRC_SUPPORT_SOURCE_H_
#define SRC_SUPPORT_SOURCE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ivy {

// A position in a registered source file. `file` indexes into SourceManager.
// line/col are 1-based; a default-constructed SourceLoc is "unknown".
struct SourceLoc {
  int32_t file = -1;
  int32_t line = 0;
  int32_t col = 0;

  bool IsValid() const { return file >= 0; }
};

// Owns the text of all source files in a compilation (the corpus modules plus
// any test snippets) and renders SourceLocs for diagnostics.
class SourceManager {
 public:
  // Registers a file and returns its id. `name` is a display name such as
  // "kernel/fs/pipe.mc"; `text` is the full contents.
  int32_t AddFile(std::string name, std::string text);

  int32_t file_count() const { return static_cast<int32_t>(files_.size()); }
  const std::string& FileName(int32_t id) const { return files_[id].name; }
  const std::string& FileText(int32_t id) const { return files_[id].text; }

  // Returns "name:line:col" (or "<unknown>") for diagnostics.
  std::string Render(const SourceLoc& loc) const;

  // Returns the source line `loc` refers to, without trailing newline.
  // Used by diagnostics to show context.
  std::string LineAt(const SourceLoc& loc) const;

 private:
  struct File {
    std::string name;
    std::string text;
  };
  std::vector<File> files_;
};

}  // namespace ivy

#endif  // SRC_SUPPORT_SOURCE_H_
