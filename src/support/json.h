// Minimal JSON reader/writer used by the annotation repository (annodb).
//
// The paper (§3.2) proposes a collaborative database of source-code facts; we
// serialize it as JSON. This is a small, strict, self-contained implementation:
// UTF-8 pass-through strings, 64-bit integers, doubles, arrays, objects.
#ifndef SRC_SUPPORT_JSON_H_
#define SRC_SUPPORT_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ivy {

// A JSON value. Objects keep keys sorted (std::map) so serialization is
// deterministic, which keeps annodb diffs and golden tests stable.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json MakeBool(bool b);
  static Json MakeInt(int64_t v);
  static Json MakeDouble(double v);
  static Json MakeString(std::string s);
  static Json MakeArray();
  static Json MakeObject();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool AsBool(bool def = false) const;
  int64_t AsInt(int64_t def = 0) const;
  double AsDouble(double def = 0.0) const;
  const std::string& AsString() const;

  // Array access. Append returns the new element.
  Json& Append(Json v);
  size_t size() const;
  const Json& At(size_t i) const;

  // Object access. operator[] inserts null on miss (mutable form only).
  Json& operator[](const std::string& key);
  const Json* Find(const std::string& key) const;
  const std::map<std::string, Json>& object() const { return object_; }
  const std::vector<Json>& array() const { return array_; }

  // Serialization. `indent` < 0 means compact single-line output.
  std::string Dump(int indent = 2) const;

  // Parses `text`; on failure returns null value and sets *error.
  static Json Parse(const std::string& text, std::string* error);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace ivy

#endif  // SRC_SUPPORT_JSON_H_
