#include "src/support/diag.h"

namespace ivy {

void DiagEngine::Error(SourceLoc loc, const std::string& msg, const std::string& tool) {
  Add(Severity::kError, loc, msg, tool);
}

void DiagEngine::Warning(SourceLoc loc, const std::string& msg, const std::string& tool) {
  Add(Severity::kWarning, loc, msg, tool);
}

void DiagEngine::Note(SourceLoc loc, const std::string& msg, const std::string& tool) {
  Add(Severity::kNote, loc, msg, tool);
}

void DiagEngine::Add(Severity sev, SourceLoc loc, const std::string& msg,
                     const std::string& tool) {
  diags_.push_back(Diagnostic{sev, loc, msg, tool});
  if (sev == Severity::kError) {
    ++errors_;
  } else if (sev == Severity::kWarning) {
    ++warnings_;
  }
}

int DiagEngine::CountFor(const std::string& tool, Severity sev) const {
  int n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.tool == tool && d.severity == sev) {
      ++n;
    }
  }
  return n;
}

std::string DiagEngine::Render() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    switch (d.severity) {
      case Severity::kError:
        out += "error";
        break;
      case Severity::kWarning:
        out += "warning";
        break;
      case Severity::kNote:
        out += "note";
        break;
    }
    out += "[" + d.tool + "] " + sm_->Render(d.loc) + ": " + d.message + "\n";
  }
  return out;
}

bool DiagEngine::Contains(const std::string& needle) const {
  for (const Diagnostic& d : diags_) {
    if (d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace ivy
