// A fixed-size thread pool with per-worker deques and work stealing — the
// substrate under the per-function sharding layer (src/tool/function_sharder.h).
//
// Scope note: one mutex guards all deques. Stealing here buys scheduling
// (idle workers drain the busiest sibling's oldest tasks, own tasks run
// newest-first for locality), not lock-free throughput — shard-granularity
// tasks are far too coarse for the lock to contend. If tasks ever become
// fine-grained, split the lock per deque before anything else.
//
// Determinism contract: WorkQueue never decides *what* a computation produces,
// only *when* it runs. Kernels built on it must write into pre-partitioned,
// index-addressed slots (one per shard) and reduce in shard order after
// Wait() — then the merged result is byte-identical no matter how tasks
// interleave. Exceptions follow the same rule: if several tasks throw, Wait()
// rethrows the one with the lowest submission index, so a failing parallel
// run reports the same error the equivalent serial loop would have hit first.
//
// Sharing one pool: WorkQueue::Wait() is queue-global, so two passes waiting
// on the same queue would see each other's tasks (and worse, each other's
// exceptions). TaskGroup scopes submission: each group counts and waits for
// only its own tasks and rethrows only its own lowest-index exception, so an
// AnalysisSession can hand every pass (and every module) the same pool —
// replacing the old one-pool-per-pass pattern — without cross-talk.
//
// Shutdown is clean by construction: the destructor (or Shutdown()) stops the
// workers after their current task, discards still-queued tasks, and joins —
// destroying a busy queue never deadlocks and never runs tasks on a
// half-destroyed object.
#ifndef SRC_SUPPORT_WORK_QUEUE_H_
#define SRC_SUPPORT_WORK_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/support/trace.h"

namespace ivy {

class WorkQueue {
 public:
  // `threads` == 0 means std::thread::hardware_concurrency() (min 1).
  explicit WorkQueue(int threads = 0) {
    int n = threads > 0 ? threads : ResolveHardware();
    workers_.reserve(static_cast<size_t>(n));
    queues_ = std::vector<Deque>(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  ~WorkQueue() { Shutdown(); }

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Scheduling counters, maintained under mu_ (the paths that bump them
  // already hold it, so they cost nothing extra). Steals = tasks drained
  // from a sibling's deque; idle waits = times a worker found every deque
  // empty and blocked. Shutdown() publishes both into the trace metrics
  // registry ("workqueue.steals" / "workqueue.idle_waits") when tracing is
  // enabled — the pool-lifetime totals the --metrics output reports.
  uint64_t steals() const {
    std::lock_guard<std::mutex> lock(mu_);
    return steals_;
  }
  uint64_t idle_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_waits_;
  }

  static int ResolveHardware() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  // Enqueues one task. Tasks may themselves Submit (the pool never blocks a
  // worker on the caller), but must not call Wait() from inside a task.
  // After Shutdown() the task is discarded and false is returned — there are
  // no workers left to run it, and counting it would wedge a later Wait()
  // forever. TaskGroup uses the return value to fall back to running the
  // task inline, so a group draining against a dying queue still completes.
  bool Submit(std::function<void()> task) {
    uint64_t seq;
    size_t home;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) {
        return false;
      }
      seq = next_seq_++;
      ++pending_;
      home = static_cast<size_t>(seq) % queues_.size();
      queues_[home].tasks.push_back(Task{std::move(task), seq});
    }
    cv_work_.notify_one();
    return true;
  }

  // Blocks until every submitted task has finished. If any task threw, the
  // exception with the lowest submission index is rethrown (once); the queue
  // stays usable for further Submit/Wait cycles.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return pending_ == 0; });
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      first_error_seq_ = UINT64_MAX;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

  // Stops the workers after their in-flight task, discards everything still
  // queued, and joins. Idempotent; called by the destructor.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) {
        return;
      }
      stopped_ = true;
      if (trace::Enabled()) {
        trace::GetCounter("workqueue.steals")->Add(steals_);
        trace::GetCounter("workqueue.idle_waits")->Add(idle_waits_);
      }
      // Discarded tasks still count as "done" so a racing Wait() cannot hang.
      for (Deque& q : queues_) {
        pending_ -= q.tasks.size();
        q.tasks.clear();
      }
    }
    cv_work_.notify_all();
    cv_idle_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
    workers_.clear();
  }

 private:
  struct Task {
    std::function<void()> fn;
    uint64_t seq = 0;
  };
  struct Deque {
    std::deque<Task> tasks;
  };

  void WorkerLoop(int self) {
    const size_t me = static_cast<size_t>(self);
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      Task task;
      bool have = false;
      // Own deque first (back = most recently submitted here, cache-warm)...
      if (!queues_[me].tasks.empty()) {
        task = std::move(queues_[me].tasks.back());
        queues_[me].tasks.pop_back();
        have = true;
      } else {
        // ...then steal the oldest task from the busiest sibling.
        size_t victim = queues_.size();
        size_t best = 0;
        for (size_t i = 0; i < queues_.size(); ++i) {
          if (i != me && queues_[i].tasks.size() > best) {
            best = queues_[i].tasks.size();
            victim = i;
          }
        }
        if (victim != queues_.size()) {
          task = std::move(queues_[victim].tasks.front());
          queues_[victim].tasks.pop_front();
          have = true;
          ++steals_;
        }
      }
      if (have) {
        lock.unlock();
        std::exception_ptr err;
        try {
          task.fn();
        } catch (...) {
          err = std::current_exception();
        }
        lock.lock();
        if (err && task.seq < first_error_seq_) {
          first_error_seq_ = task.seq;
          first_error_ = err;
        }
        if (--pending_ == 0) {
          cv_idle_.notify_all();
        }
        continue;
      }
      if (stopped_) {
        return;
      }
      ++idle_waits_;
      cv_work_.wait(lock);
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::vector<Deque> queues_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t steals_ = 0;
  uint64_t idle_waits_ = 0;
  bool stopped_ = false;
  std::exception_ptr first_error_;
  uint64_t first_error_seq_ = UINT64_MAX;
};

// A submission scope over a shared WorkQueue. Wait() blocks on — and
// rethrows the lowest-submission-index exception of — only the tasks this
// group submitted, so concurrent kernels on one pool cannot observe each
// other's completion or failures. If the queue was already shut down, the
// task runs inline on the submitting thread (degraded, still correct).
//
// Lifetime rule: the group (and the submitting code) must drain via Wait()
// before the queue's Shutdown() discards queued tasks; keep the queue alive
// for as long as any group built on it is in flight.
//
// Cancellation: Cancel() marks the group cancelled — tasks the queue has not
// started yet complete immediately without running their payload (they still
// count as done, so Wait() drains normally), and tasks submitted after the
// cancel are skipped outright. In-flight payloads finish; Cancel never
// interrupts running code. This is the drain path a shutting-down owner uses
// to abandon queued background work (e.g. a pending relink) without
// deadlocking on it — see AnalysisSession::RequestCancel for the
// cooperative in-flight half.
class TaskGroup {
 public:
  explicit TaskGroup(WorkQueue& wq) : wq_(wq) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() { Wait(/*rethrow=*/false); }

  void Submit(std::function<void()> task) {
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seq = next_seq_++;
      ++pending_;
    }
    auto wrapper = [this, seq, fn = std::move(task)] {
      std::exception_ptr err;
      if (!cancelled_.load(std::memory_order_acquire)) {
        try {
          fn();
        } catch (...) {
          err = std::current_exception();
        }
      }
      Done(seq, err);
    };
    if (!wq_.Submit(wrapper)) {
      wrapper();
    }
  }

  // Sticky: queued-but-unstarted payloads are skipped from here on. Safe to
  // call from any thread, including concurrently with Submit/Wait.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  // Blocks until every task submitted through this group finished. With
  // `rethrow` (the default), the lowest-submission-index exception — what a
  // serial loop would have hit first — is rethrown once; the group stays
  // usable for further Submit/Wait cycles.
  void Wait(bool rethrow = true) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    if (!rethrow || !first_error_) {
      return;
    }
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    first_error_seq_ = UINT64_MAX;
    lock.unlock();
    std::rethrow_exception(err);
  }

 private:
  void Done(uint64_t seq, std::exception_ptr err) {
    std::lock_guard<std::mutex> lock(mu_);
    if (err && seq < first_error_seq_) {
      first_error_seq_ = seq;
      first_error_ = err;
    }
    if (--pending_ == 0) {
      cv_done_.notify_all();
    }
  }

  WorkQueue& wq_;
  std::mutex mu_;
  std::condition_variable cv_done_;
  std::atomic<bool> cancelled_{false};
  size_t pending_ = 0;
  uint64_t next_seq_ = 0;
  std::exception_ptr first_error_;
  uint64_t first_error_seq_ = UINT64_MAX;
};

}  // namespace ivy

#endif  // SRC_SUPPORT_WORK_QUEUE_H_
