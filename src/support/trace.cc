#include "src/support/trace.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "src/support/clock.h"
#include "src/support/json.h"

namespace ivy {
namespace trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Per-thread rings
// ---------------------------------------------------------------------------

namespace {

// Bounded history per thread: old spans are overwritten, never reallocated.
// 4096 events * ~96 B keeps a busy thread under ~400 KiB.
constexpr size_t kRingCapacity = 4096;

struct ThreadRing {
  std::mutex mu;  // owner writes, WriteJson copies — never contended in steady state
  uint32_t tid = 0;
  std::vector<Event> events;  // sized kRingCapacity once, then only overwritten
  size_t next = 0;
  bool wrapped = false;

  void Push(const Event& e) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < kRingCapacity) {
      events.push_back(e);  // grows toward the cap, then only overwrites
      next = events.size() % kRingCapacity;
      return;
    }
    events[next] = e;
    next = (next + 1) % kRingCapacity;
    wrapped = true;
  }
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;  // exited threads included
  uint32_t next_tid = 1;
};

RingRegistry& Registry() {
  static RingRegistry* r = new RingRegistry();  // never destroyed: spans may
  return *r;                                    // outlive static teardown order
}

// The calling thread's ring, created and registered on first use. The
// shared_ptr in the registry keeps the ring alive after the thread exits.
ThreadRing& MyRing() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    r->tid = reg.next_tid++;
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

void CopyTruncated(char* dst, size_t cap, const char* src, size_t len) {
  size_t n = len < cap ? len : cap;
  std::memcpy(dst, src, n);
  dst[n] = '\0';
}

}  // namespace

Span::Span(const char* name, size_t len) {
  if (!Enabled()) {
    return;  // the disabled path: one relaxed load, nothing else
  }
  active_ = true;
  CopyTruncated(name_, Event::kNameCap, name, len);
  start_ns_ = MonotonicNowNs();
}

void Span::Finish() {
  const uint64_t end_ns = MonotonicNowNs();
  Event e;
  std::memcpy(e.name, name_, sizeof(e.name));
  e.start_ns = start_ns_;
  e.dur_ns = end_ns - start_ns_;
  e.nargs = nargs_;
  for (uint32_t i = 0; i < nargs_; ++i) {
    e.args[i] = args_[i];
  }
  ThreadRing& ring = MyRing();
  e.tid = ring.tid;
  ring.Push(e);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

namespace {

// One mutex-guarded map per metric kind. Entries are never erased, so the
// returned raw pointers are stable for the process lifetime.
struct MetricsRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& Metrics() {
  static MetricsRegistry* m = new MetricsRegistry();
  return *m;
}

}  // namespace

Counter* GetCounter(const std::string& name) {
  MetricsRegistry& m = Metrics();
  std::lock_guard<std::mutex> lock(m.mu);
  auto& slot = m.counters[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* GetGauge(const std::string& name) {
  MetricsRegistry& m = Metrics();
  std::lock_guard<std::mutex> lock(m.mu);
  auto& slot = m.gauges[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* GetHistogram(const std::string& name) {
  MetricsRegistry& m = Metrics();
  std::lock_guard<std::mutex> lock(m.mu);
  auto& slot = m.histograms[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

int Histogram::BucketIndex(uint64_t value) {
  if (value < 16) {
    return static_cast<int>(value);
  }
  // msb >= 4 here. 4 sub-buckets per octave: the two bits below the msb.
  int msb = 63 - __builtin_clzll(value);
  int sub = static_cast<int>((value >> (msb - 2)) & 3);
  int idx = 16 + (msb - 4) * 4 + sub;
  return idx < kBuckets ? idx : kBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index < 16) {
    return static_cast<uint64_t>(index);
  }
  int msb = 4 + (index - 16) / 4;
  int sub = (index - 16) % 4;
  // Top of sub-bucket `sub` in octave [2^msb, 2^(msb+1)).
  return (uint64_t{1} << msb) +
         ((static_cast<uint64_t>(sub) + 1) << (msb - 2)) - 1;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) {
    return 0;
  }
  if (p < 0) {
    p = 0;
  }
  if (p > 100) {
    p = 100;
  }
  // Rank of the answering sample, 1-based: the smallest rank whose
  // cumulative share reaches p% (so p=50 of 2 samples is the 1st, p=100 the
  // last — matches the sorted-vector reference in trace_test.cc).
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > total) {
    rank = total;
  }
  uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += counts[i];
    if (cum >= rank) {
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(kBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<MetricValue> SnapshotMetrics() {
  MetricsRegistry& m = Metrics();
  std::lock_guard<std::mutex> lock(m.mu);
  std::vector<MetricValue> out;
  for (const auto& [name, c] : m.counters) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kCounter;
    v.value = static_cast<int64_t>(c->Value());
    out.push_back(std::move(v));
  }
  for (const auto& [name, g] : m.gauges) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kGauge;
    v.value = g->Value();
    out.push_back(std::move(v));
  }
  for (const auto& [name, h] : m.histograms) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kHistogram;
    v.count = h->Count();
    v.sum = h->Sum();
    v.p50 = h->Percentile(50);
    v.p95 = h->Percentile(95);
    v.p99 = h->Percentile(99);
    v.max = h->Percentile(100);
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return out;
}

std::string RenderMetrics() {
  std::string out;
  for (const MetricValue& v : SnapshotMetrics()) {
    out += v.name;
    if (v.kind == MetricValue::Kind::kHistogram) {
      out += " count=" + std::to_string(v.count);
      out += " sum=" + std::to_string(v.sum);
      out += " p50=" + std::to_string(v.p50);
      out += " p95=" + std::to_string(v.p95);
      out += " p99=" + std::to_string(v.p99);
      out += " max=" + std::to_string(v.max);
    } else {
      out += " " + std::to_string(v.value);
    }
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

Json TraceSink::ToJson() {
  // Copy every ring under its own lock, then sort. Events within a ring are
  // already in emission order, but rings interleave.
  std::vector<Event> all;
  {
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& ring : reg.rings) {
      std::lock_guard<std::mutex> rlock(ring->mu);
      all.insert(all.end(), ring->events.begin(), ring->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.tid < b.tid;
  });
  uint64_t base_ns = all.empty() ? 0 : all.front().start_ns;

  Json events = Json::MakeArray();
  for (const Event& e : all) {
    Json ev = Json::MakeObject();
    ev["name"] = Json::MakeString(e.name);
    ev["ph"] = Json::MakeString("X");
    ev["ts"] = Json::MakeDouble(static_cast<double>(e.start_ns - base_ns) / 1000.0);
    ev["dur"] = Json::MakeDouble(static_cast<double>(e.dur_ns) / 1000.0);
    ev["pid"] = Json::MakeInt(1);
    ev["tid"] = Json::MakeInt(e.tid);
    if (e.nargs > 0) {
      Json args = Json::MakeObject();
      for (uint32_t i = 0; i < e.nargs; ++i) {
        args[e.args[i].key] = Json::MakeInt(e.args[i].value);
      }
      ev["args"] = std::move(args);
    }
    events.Append(std::move(ev));
  }

  Json root = Json::MakeObject();
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = Json::MakeString("ms");
  return root;
}

bool TraceSink::WriteJson(const std::string& path, std::string* err) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (err != nullptr) {
      *err = "cannot open " + path;
    }
    return false;
  }
  out << ToJson().Dump(-1) << "\n";
  if (!out) {
    if (err != nullptr) {
      *err = "write failed: " + path;
    }
    return false;
  }
  return true;
}

void ResetForTest() {
  {
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& ring : reg.rings) {
      std::lock_guard<std::mutex> rlock(ring->mu);
      ring->events.clear();
      ring->next = 0;
      ring->wrapped = false;
    }
  }
  MetricsRegistry& m = Metrics();
  std::lock_guard<std::mutex> lock(m.mu);
  for (auto& [name, c] : m.counters) {
    c->Reset();
  }
  for (auto& [name, g] : m.gauges) {
    g->Reset();
  }
  for (auto& [name, h] : m.histograms) {
    h->Reset();
  }
}

}  // namespace trace
}  // namespace ivy
