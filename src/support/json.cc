#include "src/support/json.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace ivy {

Json Json::MakeBool(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::MakeInt(int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::MakeDouble(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::MakeString(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::AsBool(bool def) const { return kind_ == Kind::kBool ? bool_ : def; }

int64_t Json::AsInt(int64_t def) const {
  if (kind_ == Kind::kInt) {
    return int_;
  }
  if (kind_ == Kind::kDouble) {
    return static_cast<int64_t>(double_);
  }
  return def;
}

double Json::AsDouble(double def) const {
  if (kind_ == Kind::kDouble) {
    return double_;
  }
  if (kind_ == Kind::kInt) {
    return static_cast<double>(int_);
  }
  return def;
}

const std::string& Json::AsString() const {
  static const std::string kEmpty;
  return kind_ == Kind::kString ? string_ : kEmpty;
}

Json& Json::Append(Json v) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(v));
  return array_.back();
}

size_t Json::size() const {
  if (kind_ == Kind::kArray) {
    return array_.size();
  }
  if (kind_ == Kind::kObject) {
    return object_.size();
  }
  return 0;
}

const Json& Json::At(size_t i) const {
  static const Json kNull;
  return i < array_.size() ? array_[i] : kNull;
}

Json& Json::operator[](const std::string& key) {
  kind_ = Kind::kObject;
  return object_[key];
}

const Json* Json::Find(const std::string& key) const {
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      *out += std::to_string(int_);
      break;
    case Kind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      *out += buf;
      break;
    }
    case Kind::kString:
      EscapeString(string_, out);
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        newline(depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline(depth);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        newline(depth + 1);
        EscapeString(k, out);
        *out += indent >= 0 ? ": " : ":";
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        newline(depth);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

// Recursive-descent JSON parser.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  Json Parse() {
    Json v = ParseValue();
    SkipWs();
    if (!failed_ && pos_ != text_.size()) {
      Fail("trailing characters");
    }
    return failed_ ? Json() : v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void Fail(const std::string& why) {
    if (!failed_) {
      failed_ = true;
      *error_ = why + " at offset " + std::to_string(pos_);
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Json ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return Json();
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      return Json::MakeString(ParseString());
    }
    if (c == 't' || c == 'f') {
      return ParseKeyword();
    }
    if (c == 'n') {
      return ParseNull();
    }
    return ParseNumber();
  }

  Json ParseObject() {
    Consume('{');
    Json obj = Json::MakeObject();
    SkipWs();
    if (Consume('}')) {
      return obj;
    }
    while (!failed_) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected object key");
        break;
      }
      std::string key = ParseString();
      if (!Consume(':')) {
        Fail("expected ':'");
        break;
      }
      obj[key] = ParseValue();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        break;
      }
      Fail("expected ',' or '}'");
    }
    return obj;
  }

  Json ParseArray() {
    Consume('[');
    Json arr = Json::MakeArray();
    SkipWs();
    if (Consume(']')) {
      return arr;
    }
    while (!failed_) {
      arr.Append(ParseValue());
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        break;
      }
      Fail("expected ',' or ']'");
    }
    return arr;
  }

  // Decodes exactly four hex digits of a \u escape. Returns -1 after
  // Fail()ing on truncation or a non-hex digit — strtol's "garbage parses
  // as 0" behavior aliased distinct strings, which the canonical-JSON
  // digests downstream cannot tolerate.
  int ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      Fail("truncated \\u escape");
      return -1;
    }
    int v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = c - 'A' + 10;
      } else {
        Fail("bad hex digit in \\u escape");
        return -1;
      }
      v = v * 16 + d;
    }
    pos_ += 4;
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string ParseString() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("truncated escape");
        return out;
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'u': {
          int unit = ParseHex4();
          if (unit < 0) {
            return out;
          }
          uint32_t cp = static_cast<uint32_t>(unit);
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low surrogate must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              Fail("unpaired high surrogate in \\u escape");
              return out;
            }
            pos_ += 2;
            int low = ParseHex4();
            if (low < 0) {
              return out;
            }
            if (low < 0xDC00 || low > 0xDFFF) {
              Fail("invalid low surrogate in \\u escape");
              return out;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (static_cast<uint32_t>(low) - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            Fail("unpaired low surrogate in \\u escape");
            return out;
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          Fail("bad escape character");
          return out;
      }
    }
    if (pos_ >= text_.size()) {
      Fail("unterminated string");
    } else {
      ++pos_;  // closing quote
    }
    return out;
  }

  Json ParseKeyword() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json::MakeBool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json::MakeBool(false);
    }
    Fail("bad keyword");
    return Json();
  }

  Json ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json();
    }
    Fail("bad keyword");
    return Json();
  }

  Json ParseNumber() {
    size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      Fail("expected value");
      return Json();
    }
    std::string num = text_.substr(start, pos_ - start);
    if (is_double) {
      return Json::MakeDouble(std::strtod(num.c_str(), nullptr));
    }
    return Json::MakeInt(std::strtoll(num.c_str(), nullptr, 10));
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

Json Json::Parse(const std::string& text, std::string* error) {
  std::string local_error;
  JsonParser parser(text, error ? error : &local_error);
  return parser.Parse();
}

}  // namespace ivy
