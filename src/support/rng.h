// Deterministic PRNG (xorshift64*) used by property tests and synthetic
// workload generators. We avoid <random> so that sequences are identical
// across platforms and the benchmark tables are exactly reproducible.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace ivy {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed ? seed : 1) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Below(uint64_t n) { return Next() % n; }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace ivy

#endif  // SRC_SUPPORT_RNG_H_
