#include "src/support/source.h"

namespace ivy {

int32_t SourceManager::AddFile(std::string name, std::string text) {
  files_.push_back(File{std::move(name), std::move(text)});
  return static_cast<int32_t>(files_.size()) - 1;
}

std::string SourceManager::Render(const SourceLoc& loc) const {
  if (!loc.IsValid() || loc.file >= file_count()) {
    return "<unknown>";
  }
  return files_[loc.file].name + ":" + std::to_string(loc.line) + ":" + std::to_string(loc.col);
}

std::string SourceManager::LineAt(const SourceLoc& loc) const {
  if (!loc.IsValid() || loc.file >= file_count() || loc.line <= 0) {
    return "";
  }
  const std::string& text = files_[loc.file].text;
  int32_t line = 1;
  size_t start = 0;
  while (line < loc.line) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      return "";
    }
    start = nl + 1;
    ++line;
  }
  size_t end = text.find('\n', start);
  if (end == std::string::npos) {
    end = text.size();
  }
  return text.substr(start, end - start);
}

}  // namespace ivy
