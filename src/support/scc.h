// Iterative Tarjan SCC condensation over a dense adjacency list — shared by
// StackCheck's per-module condensation (src/stackcheck/stackcheck.cc) and
// the session link stage's corpus-level one (src/tool/session.cc). One
// implementation, because the linked == merged-source determinism contract
// depends on the two condensations agreeing bug for bug.
//
// Deterministic: roots are tried in ascending node order and edges in the
// order given, members come out sorted ascending, and components are
// emitted in reverse topological order — every successor component of s has
// an id smaller than s, the property the link stage's single ascending
// depth sweep relies on.
#ifndef SRC_SUPPORT_SCC_H_
#define SRC_SUPPORT_SCC_H_

#include <algorithm>
#include <vector>

namespace ivy {

struct SccCondensation {
  std::vector<int> scc_of;                // node index -> component id
  std::vector<std::vector<int>> members;  // component -> node indices, ascending
};

inline SccCondensation TarjanScc(const std::vector<std::vector<int>>& adj) {
  const int n = static_cast<int>(adj.size());
  SccCondensation out;
  out.scc_of.assign(static_cast<size_t>(n), -1);
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<uint8_t> on_stack(static_cast<size_t>(n), 0);
  std::vector<int> stack;
  int next_index = 0;
  struct Frame {
    int v;
    size_t edge;
  };
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != -1) {
      continue;
    }
    std::vector<Frame> dfs;
    dfs.push_back({root, 0});
    index[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<size_t>(root)] = 1;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const std::vector<int>& edges = adj[static_cast<size_t>(f.v)];
      if (f.edge < edges.size()) {
        int w = edges[f.edge++];
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = low[static_cast<size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = 1;
          dfs.push_back({w, 0});
        } else if (on_stack[static_cast<size_t>(w)]) {
          low[static_cast<size_t>(f.v)] =
              std::min(low[static_cast<size_t>(f.v)], index[static_cast<size_t>(w)]);
        }
      } else {
        if (low[static_cast<size_t>(f.v)] == index[static_cast<size_t>(f.v)]) {
          int scc = static_cast<int>(out.members.size());
          out.members.emplace_back();
          int w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = 0;
            out.scc_of[static_cast<size_t>(w)] = scc;
            out.members.back().push_back(w);
          } while (w != f.v);
          std::sort(out.members.back().begin(), out.members.back().end());
        }
        int v = f.v;
        dfs.pop_back();
        if (!dfs.empty()) {
          low[static_cast<size_t>(dfs.back().v)] =
              std::min(low[static_cast<size_t>(dfs.back().v)], low[static_cast<size_t>(v)]);
        }
      }
    }
  }
  return out;
}

}  // namespace ivy

#endif  // SRC_SUPPORT_SCC_H_
