// ivytrace: the unified tracing + metrics layer.
//
// Two facilities behind one global on/off gate:
//
//  * Scoped spans — `TRACE_SPAN("relink.round", {"round", i})` records a
//    named interval (steady-clock timebase, up to two integer args) into a
//    per-thread ring buffer. `TraceSink::WriteJson` exports every ring as
//    Chrome `trace_event` / Perfetto-compatible JSON ("X" complete events),
//    loadable in chrome://tracing or ui.perfetto.dev.
//
//  * A metrics registry — named monotonic counters, gauges, and fixed-bucket
//    latency histograms with p50/p95/p99 readout. Histogram buckets are
//    log-spaced (4 sub-buckets per octave, <= ~19% relative error), so
//    Record() is two relaxed atomic ops and Percentile() needs no sample
//    retention.
//
// Cost contract (the reason this file is allowed to touch hot paths): when
// tracing is disabled — the default — every instrumentation site costs one
// relaxed atomic load and a predictable branch; no allocation, no lock, no
// clock read. bench_analysis_perf measures this and FATALs if the disabled
// path costs more than 2% on the 8x400 corpus run. The enabled path may
// allocate (one ring per thread, on that thread's first span) and takes a
// per-ring mutex per span; spans are deliberately coarse (per pass, per
// round, per request — never per function or per VM step).
//
// Determinism contract: tracing observes, never decides. Enabling tracing,
// metrics, or VM profiling must leave findings, summaries, and VM
// cycles/steps byte-identical — property-tested in tests/trace_test.cc and
// tests/bcvm_diff_test.cc.
//
// Threading: rings are written only by their owning thread (under that
// ring's own mutex, so a concurrent WriteJson can copy safely); the
// registry of rings and the metrics registry are mutex-guarded maps whose
// entries are never removed, so returned metric pointers stay valid for the
// process lifetime (cache them in a `static` at the call site).
#ifndef SRC_SUPPORT_TRACE_H_
#define SRC_SUPPORT_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ivy {

class Json;

namespace trace {

// ---------------------------------------------------------------------------
// The global gate
// ---------------------------------------------------------------------------

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// The single relaxed-atomic check every instrumentation site pays.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Flips tracing + metrics collection on or off (spans emitted while enabled
// stay in their rings either way). Not a barrier: threads observe the flip
// at their next span boundary, which is fine — spans are observations.
void SetEnabled(bool on);

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

// One optional integer annotation on a span. Keys must be string literals
// (or otherwise outlive the process) — events store the pointer.
struct SpanArg {
  const char* key = nullptr;
  int64_t value = 0;
};

// A completed span as stored in a ring: fixed-size, no heap pointers except
// the literal arg keys. Names are copied (truncated to fit) so dynamically
// composed names ("pass." + tool) are safe even after their string dies.
struct Event {
  static constexpr size_t kNameCap = 47;
  char name[kNameCap + 1];
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
  uint32_t nargs = 0;
  SpanArg args[2];
};

// RAII interval: constructed at the top of the scope being measured,
// records one Event on destruction. When tracing is disabled at
// construction the destructor does nothing (the span is not retroactively
// recorded if tracing flips on mid-scope).
class Span {
 public:
  explicit Span(const char* name) : Span(name, std::strlen(name)) {}
  explicit Span(const std::string& name) : Span(name.data(), name.size()) {}
  Span(const char* name, SpanArg a0) : Span(name, std::strlen(name)) {
    AddArg(a0);
  }
  Span(const std::string& name, SpanArg a0) : Span(name.data(), name.size()) {
    AddArg(a0);
  }
  Span(const char* name, SpanArg a0, SpanArg a1) : Span(name, std::strlen(name)) {
    AddArg(a0);
    AddArg(a1);
  }
  Span(const std::string& name, SpanArg a0, SpanArg a1)
      : Span(name.data(), name.size()) {
    AddArg(a0);
    AddArg(a1);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (active_) {
      Finish();
    }
  }

  // Attaches an arg discovered mid-scope (e.g. a count known only at the
  // end of the round). No-op when the span is inactive or already has two.
  void AddArg(SpanArg a) {
    if (active_ && nargs_ < 2) {
      args_[nargs_++] = a;
    }
  }

 private:
  Span(const char* name, size_t len);
  void Finish();

  char name_[Event::kNameCap + 1];
  uint64_t start_ns_ = 0;
  SpanArg args_[2];
  uint32_t nargs_ = 0;
  bool active_ = false;
};

#define IVY_TRACE_CAT2(a, b) a##b
#define IVY_TRACE_CAT(a, b) IVY_TRACE_CAT2(a, b)
// TRACE_SPAN("name") / TRACE_SPAN("name", {"k", v}) / two args. The span
// covers the rest of the enclosing scope.
#define TRACE_SPAN(...) \
  ::ivy::trace::Span IVY_TRACE_CAT(ivy_trace_span_, __LINE__)(__VA_ARGS__)

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

// Monotonic event count. Add() is unconditional (one relaxed atomic add) —
// gate on Enabled() at the call site if the count itself is the cost.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Last-writer-wins instantaneous value (queue depth, fleet size). RecordMax
// keeps a high-water mark instead.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void RecordMax(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Fixed-bucket latency/size histogram. Values are non-negative integers in
// whatever unit the call site picks (the naming convention carries the unit:
// "server.request_us"). Layout: 16 exact buckets for 0..15, then 4
// log-spaced sub-buckets per octave up to 2^63 — 256 buckets total, so a
// histogram is 2 KiB of atomics and Record() is bucket-index math plus two
// relaxed adds. Percentile() answers with the bucket's upper bound:
// pessimistic (never under-reports a latency), within ~19% of the true
// sample for octave buckets, exact below 16.
class Histogram {
 public:
  static constexpr int kBuckets = 16 + 4 * 60;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  // p in [0, 100]. Returns 0 on an empty histogram.
  uint64_t Percentile(double p) const;
  void Reset();

  static int BucketIndex(uint64_t value);
  // Inclusive upper bound of a bucket — what Percentile() reports.
  static uint64_t BucketUpperBound(int index);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

// Process-wide named metrics. Names are dot-separated, lowest-level unit
// suffixed: "workqueue.steals", "session.link_round_us". The returned
// pointer is valid forever; call sites cache it:
//
//   static auto* h = ivy::trace::GetHistogram("server.request_us");
//   h->Record(us);
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
Histogram* GetHistogram(const std::string& name);

// One deterministic snapshot of every registered metric, for rendering or
// export. Histograms carry count/sum/p50/p95/p99/max.
struct MetricValue {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind = Kind::kCounter;
  int64_t value = 0;  // counter / gauge
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};
std::vector<MetricValue> SnapshotMetrics();

// Renders SnapshotMetrics() as "name value" / "name count=N p50=... " lines
// — the --metrics output of the CLIs. Deterministically sorted by name.
std::string RenderMetrics();

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

class TraceSink {
 public:
  // All recorded spans from every thread (including exited threads), as a
  // Chrome trace_event JSON object: {"traceEvents": [...], ...}. Events are
  // sorted by start time; timestamps are microseconds relative to the
  // earliest recorded span.
  static Json ToJson();

  // ToJson() + metrics snapshot, written to `path`. False + *err on I/O
  // failure.
  static bool WriteJson(const std::string& path, std::string* err);
};

// Test hook: drops every recorded span and zeroes every metric (rings of
// exited threads included). Not thread-safe against concurrent span
// emission; call it only from quiesced tests.
void ResetForTest();

}  // namespace trace
}  // namespace ivy

#endif  // SRC_SUPPORT_TRACE_H_
