#include "src/support/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/support/numbers.h"

namespace ivy {

namespace {

void SetErr(std::string* err, const std::string& what) {
  if (err != nullptr) {
    *err = what + ": " + std::strerror(errno);
  }
}

// Splits "unix:<path>" vs "<ipv4>:<port>". Returns false on syntax errors.
// `min_port` is 0 for listeners (port 0 = kernel-assigned ephemeral port)
// and 1 for connects — there is nothing to connect *to* on port 0.
bool ParseAddress(const std::string& address, int min_port, bool* is_unix,
                  std::string* path, std::string* host, int* port,
                  std::string* err) {
  if (address.rfind("unix:", 0) == 0) {
    *is_unix = true;
    *path = address.substr(5);
    if (path->empty()) {
      if (err != nullptr) {
        *err = "empty unix socket path in '" + address + "'";
      }
      return false;
    }
    if (path->size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (err != nullptr) {
        *err = "unix socket path too long: '" + *path + "'";
      }
      return false;
    }
    return true;
  }
  *is_unix = false;
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= address.size()) {
    if (err != nullptr) {
      *err = "address '" + address + "' is neither unix:<path> nor <host>:<port>";
    }
    return false;
  }
  *host = address.substr(0, colon);
  const std::string port_s = address.substr(colon + 1);
  // Strict parse: strtol tolerated leading whitespace and '+' signs
  // (" 80", "+80"), which then leaked into error messages and scripts as
  // accepted addresses.
  int64_t p = 0;
  if (!ParseInt64Strict(port_s, min_port, 65535, &p)) {
    if (err != nullptr) {
      *err = "bad port '" + port_s + "' in '" + address +
             "' (expected an integer in [" + std::to_string(min_port) +
             ", 65535])";
    }
    return false;
  }
  *port = static_cast<int>(p);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Socket
// ---------------------------------------------------------------------------

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::ReadFull(void* buf, size_t n, bool* eof, std::string* err) {
  if (eof != nullptr) {
    *eof = false;
  }
  char* p = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::recv(fd_, p + done, n - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      if (eof != nullptr) {
        *eof = done == 0;  // clean close only before the first byte
      }
      if (err != nullptr && done != 0) {
        *err = "connection closed mid-message";
      }
      return false;
    }
    if (errno == EINTR) {
      continue;
    }
    SetErr(err, "recv");
    return false;
  }
  return true;
}

bool Socket::WriteFull(const void* buf, size_t n, std::string* err) {
  const char* p = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t put = ::send(fd_, p + done, n - done, MSG_NOSIGNAL);
    if (put > 0) {
      done += static_cast<size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) {
      continue;
    }
    SetErr(err, "send");
    return false;
  }
  return true;
}

void Socket::ShutdownBoth() {
  ShutdownFd(fd_);
}

void Socket::ShutdownFd(int fd) {
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// ListenSocket
// ---------------------------------------------------------------------------

bool ListenSocket::Listen(const std::string& address, std::string* err) {
  bool is_unix = false;
  std::string path;
  std::string host;
  int port = 0;
  if (!ParseAddress(address, /*min_port=*/0, &is_unix, &path, &host, &port,
                    err)) {
    return false;
  }
  if (is_unix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      SetErr(err, "socket(AF_UNIX)");
      return false;
    }
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
    ::unlink(path.c_str());  // a stale socket file from a dead daemon
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      SetErr(err, "bind('" + path + "')");
      ::close(fd);
      return false;
    }
    if (::listen(fd, 128) != 0) {
      SetErr(err, "listen('" + path + "')");
      ::close(fd);
      ::unlink(path.c_str());
      return false;
    }
    fd_ = fd;
    unix_path_ = path;
    bound_address_ = "unix:" + path;
    return true;
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetErr(err, "socket(AF_INET)");
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    if (err != nullptr) {
      *err = "bad IPv4 host '" + host + "'";
    }
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    SetErr(err, "bind('" + address + "')");
    ::close(fd);
    return false;
  }
  if (::listen(fd, 128) != 0) {
    SetErr(err, "listen('" + address + "')");
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    SetErr(err, "getsockname");
    ::close(fd);
    return false;
  }
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof(ip));
  fd_ = fd;
  bound_address_ = std::string(ip) + ":" + std::to_string(ntohs(bound.sin_port));
  return true;
}

Socket ListenSocket::Accept(std::string* err) {
  // Load once: Close() may swap fd_ to -1 from another thread while we block
  // in accept(); the kernel-level shutdown() is what actually wakes us.
  const int listen_fd = fd_.load(std::memory_order_acquire);
  if (listen_fd < 0) {
    if (err != nullptr) {
      *err = "listener closed";
    }
    return Socket();
  }
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      return Socket(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    SetErr(err, "accept");
    return Socket();
  }
}

void ListenSocket::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() first: a thread blocked in accept() wakes with an error;
    // plain close() of an fd in use by accept() is not a reliable unblock.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

// ---------------------------------------------------------------------------
// ConnectTo
// ---------------------------------------------------------------------------

Socket ConnectTo(const std::string& address, std::string* err) {
  bool is_unix = false;
  std::string path;
  std::string host;
  int port = 0;
  if (!ParseAddress(address, /*min_port=*/1, &is_unix, &path, &host, &port,
                    err)) {
    return Socket();
  }
  if (is_unix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      SetErr(err, "socket(AF_UNIX)");
      return Socket();
    }
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      SetErr(err, "connect('" + path + "')");
      ::close(fd);
      return Socket();
    }
    return Socket(fd);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetErr(err, "socket(AF_INET)");
    return Socket();
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    if (err != nullptr) {
      *err = "bad IPv4 host '" + host + "'";
    }
    ::close(fd);
    return Socket();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    SetErr(err, "connect('" + address + "')");
    ::close(fd);
    return Socket();
  }
  return Socket(fd);
}

}  // namespace ivy
