#include "src/support/subprocess.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ivy {

bool SpawnProcess(const std::vector<std::string>& argv, Subprocess* proc,
                  std::string* err) {
  if (argv.empty()) {
    if (err != nullptr) {
      *err = "empty argv";
    }
    return false;
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    if (err != nullptr) {
      *err = std::string("fork: ") + std::strerror(errno);
    }
    return false;
  }
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // exec failed; _exit (not exit) — no atexit handlers in the forked
    // child, which shares the parent's state.
    _exit(127);
  }
  proc->pid = pid;
  return true;
}

bool WaitProcess(Subprocess* proc, std::string* err) {
  if (proc->pid < 0) {
    if (err != nullptr) {
      *err = "no process to wait for";
    }
    return false;
  }
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(proc->pid, &status, 0);
  } while (rc < 0 && errno == EINTR);
  proc->pid = -1;
  if (rc < 0) {
    if (err != nullptr) {
      *err = std::string("waitpid: ") + std::strerror(errno);
    }
    return false;
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    return true;
  }
  if (err != nullptr) {
    if (WIFEXITED(status)) {
      *err = "worker exited with status " + std::to_string(WEXITSTATUS(status));
    } else if (WIFSIGNALED(status)) {
      *err = "worker killed by signal " + std::to_string(WTERMSIG(status));
    } else {
      *err = "worker ended abnormally";
    }
  }
  return false;
}

}  // namespace ivy
