// Minimal POSIX socket RAII wrappers for the analysis server (src/server/).
//
// Two address forms, one string syntax everywhere (annod --listen,
// annodb_query --connect, tests):
//
//   "unix:/path/to.sock"   unix-domain stream socket
//   "127.0.0.1:7077"       TCP (IPv4); port 0 binds an ephemeral port and
//                          bound_address() reports the resolved one
//
// Blocking I/O only: the server dedicates a thread per connection, and
// ReadFull/WriteFull retry short reads/writes and EINTR, so callers see
// all-or-nothing transfers. Writes use MSG_NOSIGNAL — a peer that vanished
// mid-frame surfaces as an error return, never SIGPIPE.
//
// Unblocking contract: Socket::ShutdownBoth() and ListenSocket::Close() may
// be called from another thread to make a blocked ReadFull/Accept return —
// that is how the server drains its connection threads on shutdown.
#ifndef SRC_SUPPORT_SOCKET_H_
#define SRC_SUPPORT_SOCKET_H_

#include <atomic>
#include <cstddef>
#include <string>

namespace ivy {

// One connected stream socket (move-only fd owner).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Reads exactly `n` bytes. Returns false on error or EOF; `*eof` (optional)
  // distinguishes a clean close before the first byte from a mid-buffer loss.
  bool ReadFull(void* buf, size_t n, bool* eof = nullptr, std::string* err = nullptr);

  // Writes exactly `n` bytes (MSG_NOSIGNAL). False on any error.
  bool WriteFull(const void* buf, size_t n, std::string* err = nullptr);

  // Thread-safe unblock: a ReadFull blocked in another thread returns EOF.
  void ShutdownBoth();

  // The same unblock on a raw fd whose owning Socket lives on another thread
  // (the server's connection-drain path tracks fds, not Socket pointers).
  static void ShutdownFd(int fd);

  void Close();

 private:
  int fd_ = -1;
};

// A listening socket bound to a parsed address string.
class ListenSocket {
 public:
  ListenSocket() = default;
  ListenSocket(ListenSocket&&) = delete;
  ~ListenSocket() { Close(); }

  // Binds + listens on `address` (syntax above). False (with *err) on parse
  // or syscall failure. For "host:0" the resolved port is reflected in
  // bound_address().
  bool Listen(const std::string& address, std::string* err);

  // Blocks for one connection. Invalid Socket after Close() or on error.
  Socket Accept(std::string* err = nullptr);

  // Canonical form of the bound address ("unix:<path>" or "<ip>:<port>").
  const std::string& bound_address() const { return bound_address_; }

  bool listening() const { return fd_.load(std::memory_order_acquire) >= 0; }

  // Thread-safe: unblocks a pending Accept and (for unix sockets) unlinks
  // the path.
  void Close();

 private:
  // Atomic because Close() races with an Accept() blocked on another thread
  // by design (the unblocking contract above).
  std::atomic<int> fd_{-1};
  std::string bound_address_;
  std::string unix_path_;  // non-empty for unix-domain: unlinked on Close
};

// Connects to an address in the same syntax. Invalid Socket + *err on failure.
Socket ConnectTo(const std::string& address, std::string* err);

}  // namespace ivy

#endif  // SRC_SUPPORT_SOCKET_H_
