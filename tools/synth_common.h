// Shared synthetic-corpus setup for annod (--synth) and annodb_query
// (--from-synth). The byte-identity contract — "what the daemon serves
// equals what a cold batch run prints" — only holds if both sides build the
// same corpus through the same pipeline, so the spec parsing and pipeline
// configuration live here exactly once.
#ifndef TOOLS_SYNTH_COMMON_H_
#define TOOLS_SYNTH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <string>

#include "src/tool/pipeline.h"
#include "tests/synth_corpus.h"

namespace ivy {

// The four-tool pipeline the linked-session tests and benchmarks run over
// synthetic corpora (stackcheck's budget opened wide so deep synthetic
// chains don't trip the depth cap).
inline PipelineBuilder SynthServePipeline() {
  ToolOptions sc;
  sc.SetInt("budget", int64_t{1} << 40);
  PipelineBuilder b;
  b.Tool("blockstop").Tool("stackcheck", sc).Tool("errcheck").Tool("locksafe");
  b.ShardFunctions(1);
  return b;
}

// Parses "modules:functions[:seed]" (e.g. "4:40" or "8:400:7").
inline bool ParseSynthSpec(const std::string& spec, LinkedCorpusOptions* opt) {
  size_t c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0 || c1 + 1 >= spec.size()) {
    return false;
  }
  size_t c2 = spec.find(':', c1 + 1);
  char* end = nullptr;
  long mods = std::strtol(spec.substr(0, c1).c_str(), &end, 10);
  if (*end != '\0' || mods < 2 || mods > 99) {
    return false;
  }
  const std::string fns_s =
      c2 == std::string::npos ? spec.substr(c1 + 1) : spec.substr(c1 + 1, c2 - c1 - 1);
  long fns = std::strtol(fns_s.c_str(), &end, 10);
  if (*end != '\0' || fns < 8 || fns > 100000) {
    return false;
  }
  opt->modules = static_cast<int>(mods);
  opt->functions = static_cast<int>(fns);
  if (c2 != std::string::npos) {
    long seed = std::strtol(spec.substr(c2 + 1).c_str(), &end, 10);
    if (*end != '\0' || seed < 0) {
      return false;
    }
    opt->seed = static_cast<uint64_t>(seed);
  }
  return true;
}

}  // namespace ivy

#endif  // TOOLS_SYNTH_COMMON_H_
