// annolink: the multi-process distributed relink coordinator (and, with
// --worker, the worker half it spawns). Shards each round's dirty modules
// across N worker processes that exchange summary deltas through the shared
// store file (src/store/store.h) — the paper's cluster-scale analysis made
// concrete as processes around one advisory-locked file.
//
//   annolink --synth 6:48 --store /tmp/corpus.store              # 3 workers
//   annolink --synth 6:48 --store /tmp/corpus.store --workers 5
//   annolink --synth 6:48 --store /tmp/corpus.store --single     # reference
//
// Byte-identity contract: stdout (canonical summary rows, then stamped
// findings) is identical across --single and any --workers count — CI diffs
// them. A rerun over an existing store warm-starts (stderr reports
// module_analyses=0 when nothing changed); a rerun over a store torn by a
// killed worker re-derives the same bytes from the unconverged table.
//
// Worker mode (spawned by the coordinator, not for direct use):
//   annolink --worker --store <path> --modules a,b,c
//
// --test-worker-fail <module> (CI only): the worker assigned that module
// exits 1 before analyzing — a deterministic mid-round death. The flag
// travels to workers via the ANNOLINK_TEST_FAIL_MODULE environment variable.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/store/store.h"
#include "src/support/numbers.h"
#include "src/support/trace.h"
#include "src/tool/session.h"
#include "tools/synth_common.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: annolink --synth M:N[:seed] --store <path>\n"
               "                [--workers <n>] [--single] [--test-worker-fail <module>]\n"
               "                [--trace-out <file>] [--metrics] [--heap-ast]\n"
               "       annolink --worker --store <path> --modules a,b,c\n");
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) {
        out.push_back(s.substr(start));
      }
      break;
    }
    if (comma > start) {
      out.push_back(s.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return out;
}

int RunWorker(const std::string& store, const std::string& modules_csv) {
  std::vector<std::string> modules = SplitCommas(modules_csv);
  if (store.empty() || modules.empty()) {
    Usage();
    return 1;
  }
  if (const char* fail = std::getenv("ANNOLINK_TEST_FAIL_MODULE")) {
    for (const std::string& m : modules) {
      if (m == fail) {
        std::fprintf(stderr, "annolink[worker]: failing on '%s' (test hook)\n", fail);
        return 1;
      }
    }
  }
  std::string err;
  if (!ivy::AnalysisSession::RunStoreWorker(ivy::SynthServePipeline().Build(), store,
                                            modules, &err)) {
    std::fprintf(stderr, "annolink[worker]: %s\n", err.c_str());
    return 1;
  }
  return 0;
}

// One line per converged artifact, canonical forms — identical bytes across
// --single and every worker count, which is what CI diffs.
void PrintResult(const ivy::AnalysisSession& session, const ivy::SessionResult& result) {
  for (const auto& [key, row] : session.link_table().summaries()) {
    std::printf("%s\n", row.Canonical().c_str());
  }
  for (const ivy::Finding& f : result.findings) {
    std::string line = f.module.empty() ? std::string() : "{" + f.module + "} ";
    line += f.ToString();
    std::printf("%s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string synth_spec;
  std::string store;
  std::string modules_csv;
  std::string fail_module;
  std::string trace_out;
  int workers = 3;
  bool single = false;
  bool worker_mode = false;
  bool metrics = false;
  bool heap_ast = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&i, argc, argv](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "annolink: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--synth") {
      const char* v = next("--synth");
      if (v == nullptr) return 1;
      synth_spec = v;
    } else if (arg == "--store") {
      const char* v = next("--store");
      if (v == nullptr) return 1;
      store = v;
    } else if (arg == "--modules") {
      const char* v = next("--modules");
      if (v == nullptr) return 1;
      modules_csv = v;
    } else if (arg == "--workers") {
      const char* v = next("--workers");
      if (v == nullptr) return 1;
      int64_t n = 0;
      if (!ivy::ParseInt64Strict(v, 1, 256, &n)) {
        std::fprintf(stderr, "annolink: --workers wants an integer in [1, 256], got '%s'\n", v);
        Usage();
        return 1;
      }
      workers = static_cast<int>(n);
    } else if (arg == "--single") {
      single = true;
    } else if (arg == "--worker") {
      worker_mode = true;
    } else if (arg == "--test-worker-fail") {
      const char* v = next("--test-worker-fail");
      if (v == nullptr) return 1;
      fail_module = v;
    } else if (arg == "--trace-out") {
      const char* v = next("--trace-out");
      if (v == nullptr) return 1;
      trace_out = v;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--heap-ast") {
      // A/B baseline: per-node heap AST. Output must be byte-identical to
      // the default arena mode — CI diffs the two.
      heap_ast = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "annolink: unknown argument '%s'\n", arg.c_str());
      Usage();
      return 1;
    }
  }

  if (worker_mode) {
    return RunWorker(store, modules_csv);
  }
  if (synth_spec.empty() || store.empty()) {
    Usage();
    return 1;
  }
  // Observability never touches stdout here: stdout is the byte-identity
  // surface CI diffs across worker counts. Traces go to a file, metrics to
  // stderr.
  if (!trace_out.empty() || metrics) {
    ivy::trace::SetEnabled(true);
  }

  ivy::LinkedCorpusOptions opt;
  if (!ivy::ParseSynthSpec(synth_spec, &opt)) {
    std::fprintf(stderr, "annolink: bad --synth spec '%s' (want M:N[:seed])\n",
                 synth_spec.c_str());
    return 1;
  }
  if (!fail_module.empty()) {
    ::setenv("ANNOLINK_TEST_FAIL_MODULE", fail_module.c_str(), 1);
  }

  ivy::AnalysisSession session = ivy::SynthServePipeline()
                                     .HeapAst(heap_ast)
                                     .ForEachModule(ivy::GenerateLinkedCorpus(opt))
                                     .BuildSession();
  // Warm start: adopt the previous run's facts when the store matches this
  // corpus. AddModule above and LoadStore here reconcile by source digest,
  // so an unchanged corpus relinks in one idle round (module_analyses=0).
  std::string lerr;
  if (ivy::StoreFile probe; ivy::ReadStoreFile(store, &probe, &lerr)) {
    if (session.LoadStore(store, &lerr)) {
      std::fprintf(stderr, "annolink: warm start from %s\n", store.c_str());
    } else {
      std::fprintf(stderr, "annolink: cold start (%s)\n", lerr.c_str());
    }
  }

  ivy::SessionResult result;
  if (single) {
    result = session.RunLinked();
    std::string serr;
    if (!session.SaveStore(store, &serr)) {
      std::fprintf(stderr, "annolink: cannot write store: %s\n", serr.c_str());
      return 1;
    }
  } else {
    ivy::DistributedLinkOptions dopts;
    dopts.store_path = store;
    dopts.workers = workers;
    dopts.worker_argv0 = argv[0];
    result = session.RunLinkedDistributed(dopts);
  }

  const ivy::LinkStats& ls = session.link_stats();
  std::fprintf(stderr,
               "annolink: rounds=%d module_analyses=%d summary_rows=%d "
               "cross_edges=%d converged=%d\n",
               ls.rounds, ls.module_analyses, ls.summary_rows, ls.cross_edges,
               ls.converged ? 1 : 0);
  PrintResult(session, result);
  if (!trace_out.empty()) {
    std::string terr;
    if (!ivy::trace::TraceSink::WriteJson(trace_out, &terr)) {
      std::fprintf(stderr, "annolink: cannot write trace to '%s': %s\n",
                   trace_out.c_str(), terr.c_str());
      return 1;
    }
    std::fprintf(stderr, "annolink: trace written to %s\n", trace_out.c_str());
  }
  if (metrics) {
    std::fprintf(stderr, "%s", ivy::trace::RenderMetrics().c_str());
  }
  if (result.cancelled || !ls.converged || result.compile_failures > 0) {
    return 1;
  }
  return 0;
}
