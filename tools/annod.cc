// annod: the persistent analysis-server daemon. Owns one warm
// AnalysisSession per corpus and serves queries, mutations, and control
// requests over the framed wire protocol (src/server/wire.h).
//
//   annod --listen unix:/tmp/annod.sock --synth 4:40
//   annod --listen 127.0.0.1:0 --synth 8:400:7 --corpus kernel
//   annod --listen unix:/tmp/annod.sock            # open corpora via the wire
//
// --synth M:N[:seed] opens a corpus (default name "synth") seeded with the
// deterministic linked synthetic corpus — the same corpus and pipeline
// `annodb_query --from-synth M:N[:seed]` analyzes offline, so the two can be
// diffed byte for byte (the CI smoke job does exactly that).
//
// The daemon runs until a client sends kShutdown (annodb-query
// --shutdown-server) — shutdown is a graceful drain: queued relinks are
// abandoned, the in-flight fixpoint stops at its next module boundary, and
// no partial epoch is ever published.
#include <cstdio>
#include <string>

#include "src/server/server.h"
#include "src/support/numbers.h"
#include "src/support/trace.h"
#include "tools/synth_common.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: annod --listen <unix:/path | host:port>\n"
               "             [--synth M:N[:seed]] [--corpus <name>] [--retain <epochs>]\n"
               "             [--store-dir <dir>] [--trace-out <file>] [--metrics]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen;
  std::string synth_spec;
  std::string corpus = "synth";
  std::string store_dir;
  std::string trace_out;
  bool metrics = false;
  int retain = 8;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&i, argc, argv](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "annod: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      const char* v = next("--listen");
      if (v == nullptr) {
        return 1;
      }
      listen = v;
    } else if (arg == "--synth") {
      const char* v = next("--synth");
      if (v == nullptr) {
        return 1;
      }
      synth_spec = v;
    } else if (arg == "--corpus") {
      const char* v = next("--corpus");
      if (v == nullptr) {
        return 1;
      }
      corpus = v;
    } else if (arg == "--retain") {
      const char* v = next("--retain");
      if (v == nullptr) {
        return 1;
      }
      // atoi accepted "8abc" as 8 and "abc" as 0; a ring of size 0 would
      // evict every epoch the moment it publishes.
      int64_t r = 0;
      if (!ivy::ParseInt64Strict(v, 1, 1 << 20, &r)) {
        std::fprintf(stderr,
                     "annod: --retain wants an integer in [1, %d], got '%s'\n",
                     1 << 20, v);
        Usage();
        return 1;
      }
      retain = static_cast<int>(r);
    } else if (arg == "--store-dir") {
      const char* v = next("--store-dir");
      if (v == nullptr) {
        return 1;
      }
      store_dir = v;
    } else if (arg == "--trace-out") {
      const char* v = next("--trace-out");
      if (v == nullptr) {
        return 1;
      }
      trace_out = v;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "annod: unknown argument '%s'\n", arg.c_str());
      Usage();
      return 1;
    }
  }
  if (listen.empty()) {
    Usage();
    return 1;
  }

  // Tracing goes on before the seed relink so the first fixpoint is in the
  // trace too. The JSON lands at --trace-out after the drain.
  if (!trace_out.empty() || metrics) {
    ivy::trace::SetEnabled(true);
  }

  ivy::AnnodServer::Options opts;
  opts.pipeline = ivy::SynthServePipeline().Build();
  opts.epoch_retain = retain;
  opts.store_dir = store_dir;  // per-corpus warm start across restarts
  ivy::AnnodServer server(std::move(opts));

  if (!synth_spec.empty()) {
    ivy::LinkedCorpusOptions synth;
    if (!ivy::ParseSynthSpec(synth_spec, &synth)) {
      std::fprintf(stderr, "annod: bad --synth spec '%s' (want M:N[:seed])\n",
                   synth_spec.c_str());
      return 1;
    }
    server.OpenCorpus(corpus);
    for (ivy::ModuleSources& mod : ivy::GenerateLinkedCorpus(synth)) {
      server.EnqueueUpsert(corpus, std::move(mod));
    }
    std::fprintf(stderr, "annod: corpus '%s' seeded (%d modules x %d functions)\n",
                 corpus.c_str(), synth.modules, synth.functions);
  }

  std::string err;
  if (!server.Start(listen, &err)) {
    std::fprintf(stderr, "annod: cannot listen on '%s': %s\n", listen.c_str(),
                 err.c_str());
    return 1;
  }
  std::fprintf(stderr, "annod: listening on %s\n", server.bound_address().c_str());

  server.Wait();
  if (!trace_out.empty()) {
    std::string terr;
    if (!ivy::trace::TraceSink::WriteJson(trace_out, &terr)) {
      std::fprintf(stderr, "annod: cannot write trace to '%s': %s\n",
                   trace_out.c_str(), terr.c_str());
      return 1;
    }
    std::fprintf(stderr, "annod: trace written to %s\n", trace_out.c_str());
  }
  if (metrics) {
    std::fprintf(stderr, "%s", ivy::trace::RenderMetrics().c_str());
  }
  std::fprintf(stderr, "annod: stopped\n");
  return 0;
}
