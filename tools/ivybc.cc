// ivybc: the bytecode toolchain CLI — compile modules to ivybc images,
// inspect them, and execute them on either interpreter.
//
//   ivybc [--kernel | <file.mc>...] [config] -o <out.ivybc>   compile + verify
//                                                             + encode to file
//   ivybc [--kernel | <file.mc>...] [config] --dump           print disassembly
//   ivybc --dump <image.ivybc>                                decode + verify +
//                                                             disassemble a file
//   ivybc --verify <image.ivybc>                              decode + verify
//   ivybc [sources] [config] --run <fn> [args...]             execute on the
//                                                             bytecode VM
//   ivybc [sources] [config] --tree --run <fn> [args...]      same, tree VM
//   ivybc [sources] [config] --image <img> --run <fn> ...     run a decoded
//                                                             image (sources
//                                                             supply layouts)
//
// Config flags: --ccount --smp --track-locals --no-deputy --no-discharge.
// With no sources and no --kernel, run/dump/compile default to the built-in
// kernel corpus.
//
// --run prints the result in a fixed format (value, trap, cycles, steps,
// log) that is byte-identical between --tree and the default bytecode run —
// `diff <(ivybc --run fn) <(ivybc --tree --run fn)` is the identity smoke
// check CI performs. Exit codes: 0 success, 1 usage/compile/verify errors,
// 2 the executed function trapped.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/bc/bytecode.h"
#include "src/bc/compile.h"
#include "src/bc/verify.h"
#include "src/kernel/corpus.h"
#include "src/support/trace.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: ivybc [--kernel | <file.mc>...] [--ccount] [--smp]\n"
               "             [--track-locals] [--no-deputy] [--no-discharge]\n"
               "             (-o <out.ivybc> | --dump | --run <fn> [args...])\n"
               "       ivybc --dump <image.ivybc>\n"
               "       ivybc --verify <image.ivybc>\n"
               "       ivybc [sources] --image <image.ivybc> --run <fn> [args...]\n"
               "       ivybc [sources] --tree --run <fn> [args...]\n"
               "       (--run also takes --profile, --trace-out <file>, --metrics;\n"
               "        observability output goes to stderr/file, never stdout)\n");
}

bool ReadFile(const std::string& path, std::string* out, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Decode + verify: the only road from bytes on disk to a runnable module.
bool LoadImage(const std::string& path, ivy::BcModule* m, std::string* err) {
  std::string bytes;
  if (!ReadFile(path, &bytes, err)) {
    return false;
  }
  if (!ivy::DecodeBcImage(bytes, m, err)) {
    *err = path + ": decode: " + *err;
    return false;
  }
  if (!ivy::VerifyBcModule(*m, err)) {
    *err = path + ": verify: " + *err;
    return false;
  }
  return true;
}

int RunAndPrint(ivy::Machine& vm, const std::string& fn,
                const std::vector<int64_t>& args) {
  ivy::VmResult r = vm.Call(fn, args);
  std::string arg_str;
  for (int64_t a : args) {
    arg_str += (arg_str.empty() ? "" : ", ") + std::to_string(a);
  }
  std::printf("%s(%s) = %lld\n", fn.c_str(), arg_str.c_str(),
              static_cast<long long>(r.value));
  std::printf("trap: %s%s%s\n", ivy::TrapKindName(r.trap),
              r.trap_msg.empty() ? "" : ": ", r.trap_msg.c_str());
  std::printf("cycles=%lld steps=%lld\n", static_cast<long long>(r.cycles),
              static_cast<long long>(r.steps));
  if (!vm.log().empty()) {
    std::printf("log:\n%s", vm.log().c_str());
    if (vm.log().back() != '\n') {
      std::printf("\n");
    }
  }
  return r.ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> sources;
  bool use_kernel = false;
  bool use_tree = false;
  bool dump = false;
  bool verify_only = false;
  std::string out_path;
  std::string image_path;
  std::string run_fn;
  std::vector<int64_t> run_args;
  std::string trace_out;
  bool metrics = false;
  bool profile = false;
  ivy::ToolConfig cfg;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ivybc: %s requires an argument\n", what);
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--kernel") {
      use_kernel = true;
    } else if (a == "--ccount") {
      cfg.ccount = true;
    } else if (a == "--smp") {
      cfg.smp = true;
    } else if (a == "--track-locals") {
      cfg.track_locals = true;
    } else if (a == "--no-deputy") {
      cfg.deputy = false;
    } else if (a == "--no-discharge") {
      cfg.discharge = false;
    } else if (a == "--tree") {
      use_tree = true;
    } else if (a == "--profile") {
      profile = true;
    } else if (a == "--trace-out") {
      trace_out = next("--trace-out");
    } else if (a == "--metrics") {
      metrics = true;
    } else if (a == "-o") {
      out_path = next("-o");
    } else if (a == "--image") {
      image_path = next("--image");
    } else if (a == "--dump") {
      // `--dump <image>` with no sources reads the file; bare --dump
      // disassembles the in-process compile.
      if (i + 1 < argc && argv[i + 1][0] != '-' && sources.empty() && !use_kernel) {
        image_path = argv[++i];
      }
      dump = true;
    } else if (a == "--verify") {
      image_path = next("--verify");
      verify_only = true;
    } else if (a == "--run") {
      run_fn = next("--run");
      while (i + 1 < argc) {
        char* end = nullptr;
        long long v = std::strtoll(argv[i + 1], &end, 0);
        if (end == argv[i + 1] || *end != '\0') {
          break;
        }
        run_args.push_back(v);
        ++i;
      }
    } else if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "ivybc: unknown flag '%s'\n", a.c_str());
      Usage();
      return 1;
    } else {
      sources.push_back(a);
    }
  }

  std::string err;

  // Observability is stderr/file only: --run stdout is the byte-identity
  // surface CI diffs between --tree and the bytecode VM.
  if (!trace_out.empty() || metrics) {
    ivy::trace::SetEnabled(true);
  }
  auto finish = [&trace_out, metrics](int rc) {
    if (!trace_out.empty()) {
      std::string terr;
      if (!ivy::trace::TraceSink::WriteJson(trace_out, &terr)) {
        std::fprintf(stderr, "ivybc: cannot write trace to '%s': %s\n",
                     trace_out.c_str(), terr.c_str());
        return 1;
      }
      std::fprintf(stderr, "ivybc: trace written to %s\n", trace_out.c_str());
    }
    if (metrics) {
      std::fprintf(stderr, "%s", ivy::trace::RenderMetrics().c_str());
    }
    return rc;
  };

  // Standalone image modes need no frontend at all.
  if (verify_only) {
    ivy::BcModule m;
    if (!LoadImage(image_path, &m, &err)) {
      std::fprintf(stderr, "ivybc: %s\n", err.c_str());
      return 1;
    }
    std::printf("%s: ok (%zu functions, %zu code words)\n", image_path.c_str(),
                m.funcs.size(), m.code.size());
    return 0;
  }
  if (dump && !image_path.empty() && sources.empty() && !use_kernel) {
    ivy::BcModule m;
    if (!LoadImage(image_path, &m, &err)) {
      std::fprintf(stderr, "ivybc: %s\n", err.c_str());
      return 1;
    }
    std::fputs(ivy::DisassembleBc(m).c_str(), stdout);
    return 0;
  }

  if (!dump && out_path.empty() && run_fn.empty()) {
    Usage();
    return 1;
  }

  // Everything else compiles a program (sources, or the kernel corpus).
  std::unique_ptr<ivy::Compilation> comp;
  if (use_kernel || sources.empty()) {
    comp = ivy::CompileKernel(cfg);
  } else {
    std::vector<ivy::SourceFile> files;
    for (const std::string& path : sources) {
      ivy::SourceFile f;
      f.name = path;
      if (!ReadFile(path, &f.text, &err)) {
        std::fprintf(stderr, "ivybc: %s\n", err.c_str());
        return 1;
      }
      files.push_back(std::move(f));
    }
    comp = ivy::Compile(files, cfg);
  }
  if (!comp->ok) {
    std::fprintf(stderr, "ivybc: compilation failed\n%s", comp->Errors().c_str());
    return 1;
  }

  if (!run_fn.empty() && use_tree) {
    if (profile) {
      std::fprintf(stderr, "ivybc: --profile needs the bytecode VM (no opcode "
                           "stream in --tree); ignoring\n");
    }
    auto vm = ivy::MakeVm(*comp);
    int rc;
    {
      TRACE_SPAN("vm.run");
      rc = RunAndPrint(*vm, run_fn, run_args);
    }
    return finish(rc);
  }

  // Bytecode path: an explicit --image runs the decoded file (the layouts
  // still come from the compilation); otherwise compile in-process.
  std::shared_ptr<const ivy::BcModule> bc;
  if (!image_path.empty()) {
    auto m = std::make_shared<ivy::BcModule>();
    if (!LoadImage(image_path, m.get(), &err)) {
      std::fprintf(stderr, "ivybc: %s\n", err.c_str());
      return 1;
    }
    bc = std::move(m);
  } else {
    bc = ivy::CompileToBc(comp->module, &err);
    if (bc == nullptr) {
      std::fprintf(stderr, "ivybc: bytecode compilation failed: %s\n", err.c_str());
      return 1;
    }
    if (!ivy::VerifyBcModule(*bc, &err)) {
      std::fprintf(stderr, "ivybc: compiled module fails verification: %s\n",
                   err.c_str());
      return 1;
    }
  }

  if (!out_path.empty()) {
    std::string bytes = ivy::EncodeBcImage(*bc);
    std::ofstream out(out_path, std::ios::binary);
    if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
      std::fprintf(stderr, "ivybc: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("%s: %zu bytes (%zu functions, %zu code words, %zu strings)\n",
                out_path.c_str(), bytes.size(), bc->funcs.size(), bc->code.size(),
                bc->string_pool.size());
  }
  if (dump) {
    std::fputs(ivy::DisassembleBc(*bc).c_str(), stdout);
  }
  if (!run_fn.empty()) {
    ivy::VmConfig vcfg;
    vcfg.profile = profile;
    auto vm = ivy::MakeBcVm(*comp, vcfg, bc, &err);
    if (vm == nullptr) {
      std::fprintf(stderr, "ivybc: %s\n", err.c_str());
      return 1;
    }
    int rc;
    {
      TRACE_SPAN("vm.run");
      rc = RunAndPrint(*vm, run_fn, run_args);
    }
    if (profile) {
      // Deterministic opcode order; zero-count rows elided. stderr, so the
      // stdout identity contract with --tree holds with --profile on.
      std::fprintf(stderr, "opcode profile (%s):\n", run_fn.c_str());
      const std::vector<uint64_t>& counts = vm->op_profile();
      for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] > 0) {
          std::fprintf(stderr, "  %-15s %llu\n",
                       ivy::BcOpName(static_cast<ivy::BcOp>(i)),
                       static_cast<unsigned long long>(counts[i]));
        }
      }
    }
    return finish(rc);
  }
  return finish(0);
}
