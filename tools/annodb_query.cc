// annodb-query: the §3.2 repository's read side. Queries an exported
// annotation database (facts + unified tool findings with per-module
// provenance) by function, tool, and module.
//
//   annodb-query <db.json> --function read_chan [--tool blockstop] [--module net]
//   annodb-query - --function kmalloc              # read the JSON from stdin
//   annodb-query --from-kernel --function read_chan  # build the db in-process
//   annodb-query --from-kernel --summaries --function read_chan
//
// --summaries prints the cross-module link-stage fact table (per-function
// summary rows keyed by (module, function): may-block bits + witnesses,
// error-return facts, lock deltas, callee lists, points-to escape sets,
// corpus stack depths), filtered by --function/--module when given.
//
// --from-kernel runs the full tool suite over the built-in kernel corpus
// through an AnalysisSession (so findings carry module provenance) and
// queries the resulting database — a self-contained smoke path for CI.
//
// A finding matches --function when its witness chain mentions the function
// or its message quotes it ('name'). Exit code: 0 on success (matches or
// none), 1 on usage/parse errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/annodb/annodb.h"
#include "src/kernel/corpus.h"
#include "src/tool/session.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: annodb-query [<db.json>|-|--from-kernel] --function <name>\n"
               "                    [--tool <tool>] [--module <module>] [--summaries]\n");
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    out += out.empty() ? n : "," + n;
  }
  return out;
}

void PrintSummaries(const ivy::AnnoDb& db, const std::string& function,
                    const std::string& module) {
  int rows = 0;
  for (const auto& [key, row] : db.summaries()) {
    if (!function.empty() && key.second != function) {
      continue;
    }
    if (!module.empty() && key.first != module) {
      continue;
    }
    ++rows;
    if (row.defined) {
      std::printf("summary %s/%s: defined may_block=%d", key.first.c_str(),
                  key.second.c_str(), row.may_block ? 1 : 0);
      if (!row.block_witness.empty()) {
        std::printf(" witness=\"%s\"", row.block_witness.c_str());
      }
      std::printf(" returns_error=%d frame=%lld", row.returns_error ? 1 : 0,
                  static_cast<long long>(row.frame_size));
      if (row.stack_below >= 0) {
        std::printf(" stack_below=%lld", static_cast<long long>(row.stack_below));
      }
      if (row.cross_recursive) {
        std::printf(" cross_recursive=1");
      }
      if (!row.callees.empty()) {
        std::printf(" callees=%zu", row.callees.size());
      }
      if (!row.locks_acquired.empty()) {
        std::printf(" locks=%s", JoinNames(row.locks_acquired).c_str());
      }
      if (!row.returns_points.empty()) {
        std::printf(" returns_points=%s", JoinNames(row.returns_points).c_str());
      }
      std::printf("\n");
    } else {
      std::printf("summary %s/%s: used entered_atomic=%d entered_in_irq=%d",
                  key.first.c_str(), key.second.c_str(), row.entered_atomic ? 1 : 0,
                  row.entered_in_irq ? 1 : 0);
      for (const auto& [idx, names] : row.param_points) {
        std::printf(" param%d->{%s}", idx, JoinNames(names).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("%d summary row(s) of %zu total\n", rows, db.summaries().size());
}

bool FindingMatches(const ivy::Finding& f, const std::string& function,
                    const std::string& tool, const std::string& module) {
  if (!tool.empty() && f.tool != tool) {
    return false;
  }
  if (!module.empty() && f.module != module) {
    return false;
  }
  if (function.empty()) {
    return true;
  }
  for (const std::string& step : f.witness) {
    if (step == function || step == "calls " + function) {
      return true;
    }
  }
  return f.message.find("'" + function + "'") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string function;
  std::string tool;
  std::string module;
  bool from_kernel = false;
  bool summaries = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&i, argc, argv](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "annodb-query: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--function") {
      const char* v = next("--function");
      if (v == nullptr) {
        return 1;
      }
      function = v;
    } else if (arg == "--tool") {
      const char* v = next("--tool");
      if (v == nullptr) {
        return 1;
      }
      tool = v;
    } else if (arg == "--module") {
      const char* v = next("--module");
      if (v == nullptr) {
        return 1;
      }
      module = v;
    } else if (arg == "--from-kernel") {
      from_kernel = true;
    } else if (arg == "--summaries") {
      summaries = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "annodb-query: unknown flag '%s'\n", arg.c_str());
      Usage();
      return 1;
    } else {
      input = arg;
    }
  }
  if (!from_kernel && input.empty()) {
    Usage();
    return 1;
  }

  ivy::AnnoDb db;
  if (from_kernel) {
    ivy::AnalysisSession session = ivy::PipelineBuilder()
                                       .AllTools()
                                       .FieldSensitive(false)
                                       .ForEachModule({{"kernel", ivy::KernelSources()}})
                                       .BuildSession();
    ivy::SessionResult result = session.Run();
    if (result.compile_failures > 0) {
      std::fprintf(stderr, "annodb-query: kernel corpus failed to compile\n");
      return 1;
    }
    db = session.ExportAnnoDb();
  } else {
    std::string text;
    if (input == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      text = ss.str();
    } else {
      std::ifstream in(input);
      if (!in) {
        std::fprintf(stderr, "annodb-query: cannot read '%s'\n", input.c_str());
        return 1;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
    }
    std::string err;
    ivy::Json j = ivy::Json::Parse(text, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "annodb-query: JSON parse error: %s\n", err.c_str());
      return 1;
    }
    db = ivy::AnnoDb::FromJson(j);
  }

  if (summaries) {
    PrintSummaries(db, function, module);
  }

  // Facts first: the repository's stored knowledge about the function.
  if (!function.empty()) {
    auto it = db.funcs().find(function);
    if (it != db.funcs().end()) {
      const ivy::FuncFacts& facts = it->second;
      std::printf("function %s\n", function.c_str());
      std::printf("  blocking=%d noblock=%d may_block=%d blocking_if_param=%d frame_size=%lld\n",
                  facts.blocking ? 1 : 0, facts.noblock ? 1 : 0, facts.may_block ? 1 : 0,
                  facts.blocking_if_param, static_cast<long long>(facts.frame_size));
      if (!facts.errcodes.empty()) {
        std::printf("  errcodes:");
        for (int64_t code : facts.errcodes) {
          std::printf(" %lld", static_cast<long long>(code));
        }
        std::printf("\n");
      }
      for (const std::string& p : facts.param_annots) {
        std::printf("  param: %s\n", p.c_str());
      }
    } else {
      std::printf("function %s: not in the database\n", function.c_str());
    }
  }

  int matches = 0;
  for (const ivy::Finding& f : db.findings()) {
    if (!FindingMatches(f, function, tool, module)) {
      continue;
    }
    ++matches;
    std::string line = f.module.empty() ? std::string() : "{" + f.module + "} ";
    line += f.ToString();
    std::printf("%s\n", line.c_str());
  }
  std::printf("%d finding(s)", matches);
  if (!function.empty()) {
    std::printf(" for --function %s", function.c_str());
  }
  if (!tool.empty()) {
    std::printf(" --tool %s", tool.c_str());
  }
  if (!module.empty()) {
    std::printf(" --module %s", module.c_str());
  }
  std::printf(" of %zu total\n", db.findings().size());
  return 0;
}
