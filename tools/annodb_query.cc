// annodb-query: the §3.2 repository's read side — and the annod daemon's
// command-line client. Queries findings and link-stage summary rows by
// function, tool, and module.
//
// Offline (batch) modes:
//   annodb-query <db.json> --function read_chan [--tool blockstop] [--module net]
//   annodb-query - --function kmalloc               # read the JSON from stdin
//   annodb-query --from-kernel --function read_chan   # build the db in-process
//   annodb-query --from-synth 4:40 [--summaries]      # cold RunLinked() over the
//                                                     # deterministic synth corpus
//   annodb-query --from-synth 4:40 --dump-module mod_01   # print that module's
//                                                         # generated source
//   annodb-query --store corpus.store --summaries     # raw view of a
//                                                     # persistent store file
//
// Connected mode (talks to a running annod over the framed wire protocol;
// every request is encoded through the same AnnodClient library the server
// tests and benchmarks use):
//   annodb-query --connect unix:/tmp/annod.sock --corpus synth --function m00_fn_0004
//   annodb-query --connect ... --corpus synth --summaries --module mod_01
//   annodb-query --connect ... --corpus synth --epoch 3        # pin an epoch
//   annodb-query --connect ... --corpus synth --sync           # wait for quiescence
//   annodb-query --connect ... --corpus synth --sync
//       --replace mod_01:m01_fn_0005 --with-file new_def.mc
//   annodb-query --connect ... --corpus synth --upsert mod_09 --with-file mod.mc
//   annodb-query --connect ... --corpus synth --remove mod_09
//   annodb-query --connect ... --corpus synth --stats
//   annodb-query --connect ... --shutdown-server
//
// Connected queries and --from-synth print identical bytes for the same
// corpus state (both render the canonical snapshot rows; epoch ids go to
// stderr), so `diff <(--from-synth ...) <(--connect ...)` is the
// byte-identity check CI runs.
//
// A finding matches --function when its witness chain mentions the function
// or its message quotes it ('name') — FindingQuery in src/tool/finding.h,
// shared with the server's query handler. Exit code: 0 on success (matches
// or none), 1 on usage/parse/connection errors.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/annodb/annodb.h"
#include "src/kernel/corpus.h"
#include "src/server/client.h"
#include "src/server/epoch.h"
#include "src/store/store.h"
#include "src/support/numbers.h"
#include "src/support/trace.h"
#include "src/tool/session.h"
#include "tools/synth_common.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: annodb-query [<db.json>|-|--from-kernel|--from-synth M:N[:seed]]\n"
      "                    [--function <name>] [--tool <tool>] [--module <module>]\n"
      "                    [--summaries]\n"
      "       annodb-query --store <path.store> [query flags above] [--summaries]\n"
      "       annodb-query --connect <unix:/path|host:port> --corpus <name>\n"
      "                    [query flags above] [--epoch <id>] [--sync] [--stats]\n"
      "                    [--open] [--upsert <module> --with-file <path>]\n"
      "                    [--replace <module>:<function> --with-file <path>]\n"
      "                    [--remove <module>] [--shutdown-server] [--metrics]\n"
      "       (offline modes also take --trace-out <file> and --metrics)\n");
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    out += out.empty() ? n : "," + n;
  }
  return out;
}

// One summary row, one line — shared verbatim by every mode so outputs diff.
void PrintSummaryRow(const std::string& module, const std::string& function,
                     const ivy::FuncSummary& row) {
  if (row.defined) {
    std::printf("summary %s/%s: defined may_block=%d", module.c_str(),
                function.c_str(), row.may_block ? 1 : 0);
    if (!row.block_witness.empty()) {
      std::printf(" witness=\"%s\"", row.block_witness.c_str());
    }
    std::printf(" returns_error=%d frame=%lld", row.returns_error ? 1 : 0,
                static_cast<long long>(row.frame_size));
    if (row.stack_below >= 0) {
      std::printf(" stack_below=%lld", static_cast<long long>(row.stack_below));
    }
    if (row.cross_recursive) {
      std::printf(" cross_recursive=1");
    }
    if (!row.callees.empty()) {
      std::printf(" callees=%zu", row.callees.size());
    }
    if (!row.locks_acquired.empty()) {
      std::printf(" locks=%s", JoinNames(row.locks_acquired).c_str());
    }
    if (!row.returns_points.empty()) {
      std::printf(" returns_points=%s", JoinNames(row.returns_points).c_str());
    }
    std::printf("\n");
  } else {
    std::printf("summary %s/%s: used entered_atomic=%d entered_in_irq=%d",
                module.c_str(), function.c_str(), row.entered_atomic ? 1 : 0,
                row.entered_in_irq ? 1 : 0);
    for (const auto& [idx, names] : row.param_points) {
      std::printf(" param%d->{%s}", idx, JoinNames(names).c_str());
    }
    std::printf("\n");
  }
}

void PrintSummariesTrailer(int rows, size_t total) {
  std::printf("%d summary row(s) of %zu total\n", rows, total);
}

void PrintFinding(const ivy::Finding& f) {
  std::string line = f.module.empty() ? std::string() : "{" + f.module + "} ";
  line += f.ToString();
  std::printf("%s\n", line.c_str());
}

void PrintFindingsTrailer(int matches, size_t total, const std::string& function,
                          const std::string& tool, const std::string& module) {
  std::printf("%d finding(s)", matches);
  if (!function.empty()) {
    std::printf(" for --function %s", function.c_str());
  }
  if (!tool.empty()) {
    std::printf(" --tool %s", tool.c_str());
  }
  if (!module.empty()) {
    std::printf(" --module %s", module.c_str());
  }
  std::printf(" of %zu total\n", total);
}

bool ReadFileOrDie(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "annodb-query: cannot read '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

struct Args {
  std::string input;
  std::string function;
  std::string tool;
  std::string module;
  bool from_kernel = false;
  bool summaries = false;
  std::string from_synth;
  std::string dump_module;
  std::string store_path;

  std::string connect;
  std::string corpus = "synth";
  uint64_t epoch = 0;
  bool sync = false;
  bool stats = false;
  bool open = false;
  bool shutdown_server = false;
  std::string upsert_module;
  std::string replace_spec;  // module:function
  std::string remove_module;
  std::string with_file;

  // Observability: connected --metrics renders the daemon's live latency
  // percentiles (kStats v2 block); offline --metrics/--trace-out observe
  // the in-process analysis run itself.
  bool metrics = false;
  std::string trace_out;

  bool HasAction() const {
    return open || stats || shutdown_server || metrics || !upsert_module.empty() ||
           !replace_spec.empty() || !remove_module.empty();
  }
};

// Runs the query pair (optional summaries block, then findings) against a
// connected daemon and prints exactly what the offline modes print.
int RunConnectedQuery(ivy::AnnodClient& client, const Args& a) {
  std::string err;
  if (a.summaries) {
    ivy::SummariesQueryMsg q;
    q.corpus = a.corpus;
    q.epoch = a.epoch;
    q.function = a.function;
    q.module = a.module;
    ivy::RowsReplyMsg reply;
    if (!client.QuerySummaries(q, &reply, &err)) {
      std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
      return 1;
    }
    std::fprintf(stderr, "epoch %llu\n", static_cast<unsigned long long>(reply.epoch));
    for (const std::string& row : reply.rows) {
      std::string perr;
      ivy::Json j = ivy::Json::Parse(row, &perr);
      if (!perr.empty()) {
        std::fprintf(stderr, "annodb-query: bad summary row: %s\n", perr.c_str());
        return 1;
      }
      ivy::FuncSummary s = ivy::FuncSummary::FromJson(j);
      PrintSummaryRow(s.module, s.function, s);
    }
    PrintSummariesTrailer(static_cast<int>(reply.rows.size()),
                          static_cast<size_t>(reply.total));
  }

  ivy::FindingsQueryMsg q;
  q.corpus = a.corpus;
  q.epoch = a.epoch;
  q.function = a.function;
  q.tool = a.tool;
  q.module = a.module;
  ivy::RowsReplyMsg reply;
  if (!client.QueryFindings(q, &reply, &err)) {
    std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
    return 1;
  }
  std::fprintf(stderr, "epoch %llu\n", static_cast<unsigned long long>(reply.epoch));
  for (const std::string& row : reply.rows) {
    std::string perr;
    ivy::Json j = ivy::Json::Parse(row, &perr);
    if (!perr.empty()) {
      std::fprintf(stderr, "annodb-query: bad finding row: %s\n", perr.c_str());
      return 1;
    }
    PrintFinding(ivy::Finding::FromJson(j));
  }
  PrintFindingsTrailer(static_cast<int>(reply.rows.size()),
                       static_cast<size_t>(reply.total), a.function, a.tool,
                       a.module);
  return 0;
}

int RunConnected(const Args& a) {
  ivy::AnnodClient client;
  std::string err;
  if (!client.Connect(a.connect, &err)) {
    std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
    return 1;
  }
  if (a.open) {
    if (!client.OpenCorpus(a.corpus, &err)) {
      std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
      return 1;
    }
    std::fprintf(stderr, "opened corpus '%s'\n", a.corpus.c_str());
  }
  if (!a.upsert_module.empty()) {
    if (a.with_file.empty()) {
      std::fprintf(stderr, "annodb-query: --upsert needs --with-file\n");
      return 1;
    }
    std::string text;
    if (!ReadFileOrDie(a.with_file, &text)) {
      return 1;
    }
    uint64_t at = 0;
    if (!client.UpsertModule(a.corpus, a.upsert_module,
                             {{a.upsert_module + ".mc", text}}, &at, &err)) {
      std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
      return 1;
    }
    std::fprintf(stderr, "upsert '%s' accepted at epoch %llu\n",
                 a.upsert_module.c_str(), static_cast<unsigned long long>(at));
  }
  if (!a.replace_spec.empty()) {
    size_t colon = a.replace_spec.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= a.replace_spec.size()) {
      std::fprintf(stderr, "annodb-query: --replace wants <module>:<function>\n");
      return 1;
    }
    if (a.with_file.empty()) {
      std::fprintf(stderr, "annodb-query: --replace needs --with-file\n");
      return 1;
    }
    std::string definition;
    if (!ReadFileOrDie(a.with_file, &definition)) {
      return 1;
    }
    uint64_t at = 0;
    if (!client.ReplaceFunction(a.corpus, a.replace_spec.substr(0, colon),
                                a.replace_spec.substr(colon + 1), definition, &at,
                                &err)) {
      std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
      return 1;
    }
    std::fprintf(stderr, "replace '%s' accepted at epoch %llu\n",
                 a.replace_spec.c_str(), static_cast<unsigned long long>(at));
  }
  if (!a.remove_module.empty()) {
    uint64_t at = 0;
    if (!client.RemoveModule(a.corpus, a.remove_module, &at, &err)) {
      std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
      return 1;
    }
    std::fprintf(stderr, "remove '%s' accepted at epoch %llu\n",
                 a.remove_module.c_str(), static_cast<unsigned long long>(at));
  }
  if (a.sync) {
    uint64_t epoch = 0;
    if (!client.Sync(a.corpus, &epoch, &err)) {
      std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
      return 1;
    }
    std::fprintf(stderr, "synced epoch %llu\n", static_cast<unsigned long long>(epoch));
  }
  if (a.stats) {
    ivy::StatsReplyMsg s;
    if (!client.Stats(a.corpus, &s, &err)) {
      std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
      return 1;
    }
    std::printf("corpus %s: epoch=%llu modules=%u findings=%llu summary_rows=%llu\n",
                a.corpus.c_str(), static_cast<unsigned long long>(s.epoch), s.modules,
                static_cast<unsigned long long>(s.findings),
                static_cast<unsigned long long>(s.summary_rows));
    std::printf("  link_rounds=%u converged=%u queued_edits=%u relinks=%llu\n",
                s.link_rounds, s.converged, s.queued_edits,
                static_cast<unsigned long long>(s.relinks));
    for (const std::string& e : s.apply_errors) {
      std::printf("  apply_error: %s\n", e.c_str());
    }
  }
  if (a.metrics) {
    // The live snapshot: the daemon's always-on histograms over the wire,
    // no tracing required on either end.
    ivy::StatsReplyMsg s;
    if (!client.Stats(a.corpus, &s, &err)) {
      std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
      return 1;
    }
    std::printf("metrics %s:\n", a.corpus.c_str());
    std::printf("  requests count=%llu p50_us=%llu p95_us=%llu p99_us=%llu\n",
                static_cast<unsigned long long>(s.request_count),
                static_cast<unsigned long long>(s.request_p50_us),
                static_cast<unsigned long long>(s.request_p95_us),
                static_cast<unsigned long long>(s.request_p99_us));
    std::printf("  publishes count=%llu p50_us=%llu p99_us=%llu\n",
                static_cast<unsigned long long>(s.publish_count),
                static_cast<unsigned long long>(s.publish_p50_us),
                static_cast<unsigned long long>(s.publish_p99_us));
    std::printf("  edit_queue_peak=%u\n", s.edit_queue_peak);
  }
  if (a.shutdown_server) {
    if (!client.Shutdown(&err)) {
      std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
      return 1;
    }
    std::fprintf(stderr, "server shutting down\n");
    return 0;
  }
  if (a.HasAction()) {
    return 0;  // mutation/control invocation: no query block
  }
  return RunConnectedQuery(client, a);
}

// Cold batch reference: RunLinked() over the deterministic synthetic corpus,
// rendered through the same BuildEpochSnapshot the server publishes from.
int RunFromSynth(const Args& a) {
  ivy::LinkedCorpusOptions opt;
  if (!ivy::ParseSynthSpec(a.from_synth, &opt)) {
    std::fprintf(stderr, "annodb-query: bad --from-synth spec '%s' (want M:N[:seed])\n",
                 a.from_synth.c_str());
    return 1;
  }
  if (!a.dump_module.empty()) {
    // Source dump only (no analysis): what a client needs to re-upsert a
    // module's pristine sources after experimenting with edits.
    for (const ivy::ModuleSources& mod : ivy::GenerateLinkedCorpus(opt)) {
      if (mod.name == a.dump_module) {
        for (const ivy::SourceFile& f : mod.files) {
          std::fputs(f.text.c_str(), stdout);
        }
        return 0;
      }
    }
    std::fprintf(stderr, "annodb-query: no module '%s' in this corpus\n",
                 a.dump_module.c_str());
    return 1;
  }
  ivy::AnalysisSession session = ivy::SynthServePipeline()
                                     .ForEachModule(ivy::GenerateLinkedCorpus(opt))
                                     .BuildSession();
  ivy::SessionResult result = session.RunLinked();
  if (result.compile_failures > 0) {
    std::fprintf(stderr, "annodb-query: synth corpus failed to compile\n");
    return 1;
  }
  auto snap = ivy::BuildEpochSnapshot(1, result, session.link_table());

  if (a.summaries) {
    int rows = 0;
    for (const ivy::FuncSummary& row : snap->summaries) {
      if (!a.function.empty() && row.function != a.function) {
        continue;
      }
      if (!a.module.empty() && row.module != a.module) {
        continue;
      }
      ++rows;
      PrintSummaryRow(row.module, row.function, row);
    }
    PrintSummariesTrailer(rows, snap->summaries.size());
  }

  ivy::FindingQuery q;
  q.function = a.function;
  q.tool = a.tool;
  q.module = a.module;
  int matches = 0;
  for (const ivy::Finding& f : snap->findings) {
    if (!q.Matches(f)) {
      continue;
    }
    ++matches;
    PrintFinding(f);
  }
  PrintFindingsTrailer(matches, snap->findings.size(), a.function, a.tool, a.module);
  return 0;
}

// Raw viewer over a persistent store file (src/store/store.h) — what annod
// --store-dir and annolink write. No analysis: the file's own facts are
// decoded and rendered through the same row/finding printers, findings
// stamped with their record's module name.
int RunFromStore(const Args& a) {
  ivy::StoreFile sf;
  std::string err;
  if (!ivy::ReadStoreFile(a.store_path, &sf, &err)) {
    std::fprintf(stderr, "annodb-query: %s\n", err.c_str());
    return 1;
  }
  std::fprintf(stderr, "store %s: corpus_digest=%016llx linked=%d converged=%d modules=%zu\n",
               a.store_path.c_str(),
               static_cast<unsigned long long>(sf.corpus_digest), sf.linked ? 1 : 0,
               sf.converged ? 1 : 0, sf.modules.size());

  if (a.summaries) {
    int rows = 0;
    for (const auto& [key, canon] : sf.summaries) {
      if (!a.function.empty() && key.second != a.function) {
        continue;
      }
      if (!a.module.empty() && key.first != a.module) {
        continue;
      }
      std::string perr;
      ivy::Json j = ivy::Json::Parse(canon, &perr);
      if (!perr.empty()) {
        std::fprintf(stderr, "annodb-query: bad summary row in store: %s\n", perr.c_str());
        return 1;
      }
      ++rows;
      PrintSummaryRow(key.first, key.second, ivy::FuncSummary::FromJson(j));
    }
    PrintSummariesTrailer(rows, sf.summaries.size());
  }

  ivy::FindingQuery q;
  q.function = a.function;
  q.tool = a.tool;
  q.module = a.module;
  int matches = 0;
  size_t total = 0;
  for (const auto& [name, rec] : sf.modules) {
    if (!rec.analyzed || !rec.ok) {
      continue;
    }
    for (const std::string& canon : rec.findings_canon) {
      std::string perr;
      ivy::Json j = ivy::Json::Parse(canon, &perr);
      if (!perr.empty()) {
        std::fprintf(stderr, "annodb-query: bad finding in store: %s\n", perr.c_str());
        return 1;
      }
      ivy::Finding f = ivy::Finding::FromJson(j);
      f.module = name;  // store records cache unstamped findings
      ++total;
      if (!q.Matches(f)) {
        continue;
      }
      ++matches;
      PrintFinding(f);
    }
  }
  PrintFindingsTrailer(matches, total, a.function, a.tool, a.module);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&i, argc, argv](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "annodb-query: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    auto want = [&next](const char* flag, std::string* out) {
      const char* v = next(flag);
      if (v == nullptr) {
        return false;
      }
      *out = v;
      return true;
    };
    if (arg == "--function") {
      if (!want("--function", &a.function)) return 1;
    } else if (arg == "--tool") {
      if (!want("--tool", &a.tool)) return 1;
    } else if (arg == "--module") {
      if (!want("--module", &a.module)) return 1;
    } else if (arg == "--from-kernel") {
      a.from_kernel = true;
    } else if (arg == "--from-synth") {
      if (!want("--from-synth", &a.from_synth)) return 1;
    } else if (arg == "--dump-module") {
      if (!want("--dump-module", &a.dump_module)) return 1;
    } else if (arg == "--store") {
      if (!want("--store", &a.store_path)) return 1;
    } else if (arg == "--summaries") {
      a.summaries = true;
    } else if (arg == "--connect") {
      if (!want("--connect", &a.connect)) return 1;
    } else if (arg == "--corpus") {
      if (!want("--corpus", &a.corpus)) return 1;
    } else if (arg == "--epoch") {
      const char* v = next("--epoch");
      if (v == nullptr) return 1;
      int64_t e = 0;
      if (!ivy::ParseInt64Strict(v, 1, INT64_MAX, &e)) {
        std::fprintf(stderr, "annodb-query: bad --epoch '%s' (want a positive integer)\n", v);
        Usage();
        return 1;
      }
      a.epoch = static_cast<uint64_t>(e);
    } else if (arg == "--sync") {
      a.sync = true;
    } else if (arg == "--stats") {
      a.stats = true;
    } else if (arg == "--open") {
      a.open = true;
    } else if (arg == "--shutdown-server") {
      a.shutdown_server = true;
    } else if (arg == "--upsert") {
      if (!want("--upsert", &a.upsert_module)) return 1;
    } else if (arg == "--replace") {
      if (!want("--replace", &a.replace_spec)) return 1;
    } else if (arg == "--remove") {
      if (!want("--remove", &a.remove_module)) return 1;
    } else if (arg == "--with-file") {
      if (!want("--with-file", &a.with_file)) return 1;
    } else if (arg == "--metrics") {
      a.metrics = true;
    } else if (arg == "--trace-out") {
      if (!want("--trace-out", &a.trace_out)) return 1;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "annodb-query: unknown flag '%s'\n", arg.c_str());
      Usage();
      return 1;
    } else {
      a.input = arg;
    }
  }

  if (!a.connect.empty()) {
    return RunConnected(a);
  }
  // Offline observability: trace/meter the in-process analysis run. stdout
  // stays the query-result surface; traces go to the file, metrics to
  // stderr.
  if (!a.trace_out.empty() || a.metrics) {
    ivy::trace::SetEnabled(true);
  }
  auto finish = [&a](int rc) {
    if (!a.trace_out.empty()) {
      std::string terr;
      if (!ivy::trace::TraceSink::WriteJson(a.trace_out, &terr)) {
        std::fprintf(stderr, "annodb-query: cannot write trace to '%s': %s\n",
                     a.trace_out.c_str(), terr.c_str());
        return 1;
      }
      std::fprintf(stderr, "trace written to %s\n", a.trace_out.c_str());
    }
    if (a.metrics) {
      std::fprintf(stderr, "%s", ivy::trace::RenderMetrics().c_str());
    }
    return rc;
  };
  if (!a.store_path.empty()) {
    return finish(RunFromStore(a));
  }
  if (!a.from_synth.empty()) {
    return finish(RunFromSynth(a));
  }
  if (!a.from_kernel && a.input.empty()) {
    Usage();
    return 1;
  }

  ivy::AnnoDb db;
  if (a.from_kernel) {
    ivy::AnalysisSession session = ivy::PipelineBuilder()
                                       .AllTools()
                                       .FieldSensitive(false)
                                       .ForEachModule({{"kernel", ivy::KernelSources()}})
                                       .BuildSession();
    ivy::SessionResult result = session.Run();
    if (result.compile_failures > 0) {
      std::fprintf(stderr, "annodb-query: kernel corpus failed to compile\n");
      return 1;
    }
    db = session.ExportAnnoDb();
  } else {
    std::string text;
    if (a.input == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      text = ss.str();
    } else if (!ReadFileOrDie(a.input, &text)) {
      return 1;
    }
    std::string err;
    ivy::Json j = ivy::Json::Parse(text, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "annodb-query: JSON parse error: %s\n", err.c_str());
      return 1;
    }
    db = ivy::AnnoDb::FromJson(j);
  }

  if (a.summaries) {
    int rows = 0;
    for (const auto& [key, row] : db.summaries()) {
      if (!a.function.empty() && key.second != a.function) {
        continue;
      }
      if (!a.module.empty() && key.first != a.module) {
        continue;
      }
      ++rows;
      PrintSummaryRow(key.first, key.second, row);
    }
    PrintSummariesTrailer(rows, db.summaries().size());
  }

  // Facts first: the repository's stored knowledge about the function.
  if (!a.function.empty()) {
    auto it = db.funcs().find(a.function);
    if (it != db.funcs().end()) {
      const ivy::FuncFacts& facts = it->second;
      std::printf("function %s\n", a.function.c_str());
      std::printf("  blocking=%d noblock=%d may_block=%d blocking_if_param=%d frame_size=%lld\n",
                  facts.blocking ? 1 : 0, facts.noblock ? 1 : 0, facts.may_block ? 1 : 0,
                  facts.blocking_if_param, static_cast<long long>(facts.frame_size));
      if (!facts.errcodes.empty()) {
        std::printf("  errcodes:");
        for (int64_t code : facts.errcodes) {
          std::printf(" %lld", static_cast<long long>(code));
        }
        std::printf("\n");
      }
      for (const std::string& p : facts.param_annots) {
        std::printf("  param: %s\n", p.c_str());
      }
    } else {
      std::printf("function %s: not in the database\n", a.function.c_str());
    }
  }

  ivy::FindingQuery q;
  q.function = a.function;
  q.tool = a.tool;
  q.module = a.module;
  int matches = 0;
  for (const ivy::Finding& f : db.findings()) {
    if (!q.Matches(f)) {
      continue;
    }
    ++matches;
    PrintFinding(f);
  }
  PrintFindingsTrailer(matches, db.findings().size(), a.function, a.tool, a.module);
  return finish(0);
}
