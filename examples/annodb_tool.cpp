// The §3.2 collaboration story: export the kernel's annotation database,
// merge a second researcher's contribution, and apply the merged facts to an
// unannotated module so the analyses work on it without source changes.
//
// The export side runs through the unified pipeline: one AnalysisContext,
// every tool's findings merged into the database JSON alongside the facts.
//
// Build & run:  ./build/examples/example_annodb_tool
#include <cstdio>

#include "src/annodb/annodb.h"
#include "src/kernel/corpus.h"
#include "src/tool/pipeline.h"

int main() {
  // 1. Export: analyze the kernel with the full tool suite and extract
  // every fact (and finding) the tools learned.
  ivy::Pipeline pipeline = ivy::PipelineBuilder().AllTools().FieldSensitive(false).Build();
  auto comp = pipeline.Compile(ivy::KernelSources());
  if (!comp->ok) {
    std::fprintf(stderr, "compile failed\n%s", comp->Errors().c_str());
    return 1;
  }
  auto ctx = pipeline.MakeContext(comp.get());
  ivy::PipelineResult result = pipeline.RunTools(*ctx);
  ivy::AnnoDb db = ivy::AnnoDb::Extract(*ctx, &result);
  const ivy::Json j = db.ToJson();
  std::string json = j.Dump();
  std::printf(
      "exported annotation repository: %zu functions, %zu records, %zu findings, %zu bytes "
      "JSON\n",
      db.funcs().size(), db.records().size(), db.findings().size(), json.size());

  // Show a couple of representative entries.
  for (const char* name : {"read_chan", "kmalloc", "udp_sendmsg"}) {
    if (const ivy::Json* funcs = j.Find("functions")) {
      if (const ivy::Json* f = funcs->Find(name)) {
        std::printf("  %s: %s\n", name, f->Dump(-1).c_str());
      }
    }
  }

  // 2. Round trip + merge with a contributed database.
  std::string err;
  ivy::AnnoDb loaded = ivy::AnnoDb::FromJson(ivy::Json::Parse(json, &err));
  ivy::Json contrib = ivy::Json::MakeObject();
  contrib["functions"]["third_party_dma_wait"]["blocking"] = ivy::Json::MakeBool(true);
  ivy::AnnoDb contributed = ivy::AnnoDb::FromJson(contrib);
  int added = loaded.Merge(contributed);
  std::printf("\nmerged contributed database: %d new entries (now %zu functions)\n", added,
              loaded.funcs().size());

  // 3. Apply to an unannotated module: the author wrote no attributes, but
  // the repository knows third_party_dma_wait blocks, so BlockStop finds the
  // atomic-context bug anyway.
  const char* unannotated = R"(
    int dma_lock;
    void third_party_dma_wait(void);
    void flush_dma_rings(void) {
      int flags = spin_lock_irqsave(&dma_lock);
      third_party_dma_wait();
      spin_unlock_irqrestore(&dma_lock, flags);
    }
  )";
  ivy::ToolConfig cfg;
  auto module = ivy::CompileOne(unannotated, cfg);
  if (!module->ok) {
    std::fprintf(stderr, "module failed\n%s", module->Errors().c_str());
    return 1;
  }
  int applied = loaded.ApplyAttributes(&module->prog);
  std::printf("applied repository facts to the unannotated module: %d functions updated\n",
              applied);

  ivy::Pipeline bs_only = ivy::PipelineBuilder().Tool("blockstop").FieldSensitive(false).Build();
  auto module_ctx = bs_only.MakeContext(module.get());
  ivy::PipelineResult module_result = bs_only.RunTools(*module_ctx);
  std::printf("BlockStop on it: %d violation(s)\n", module_result.ErrorCount());
  for (const ivy::Finding& f : module_result.findings) {
    if (f.severity == ivy::FindingSeverity::kError) {
      std::printf("  %s\n", f.ToString(&module->sm).c_str());
    }
  }
  return 0;
}
