// The §3.2 collaboration story: export the kernel's annotation database,
// merge a second researcher's contribution, and apply the merged facts to an
// unannotated module so the analyses work on it without source changes.
//
// Build & run:  ./build/examples/example_annodb_tool
#include <cstdio>

#include "src/analysis/callgraph.h"
#include "src/analysis/pointsto.h"
#include "src/annodb/annodb.h"
#include "src/blockstop/blockstop.h"
#include "src/kernel/corpus.h"

int main() {
  // 1. Export: analyze the kernel and extract every fact the tools learned.
  ivy::ToolConfig cfg;
  auto comp = ivy::CompileKernel(cfg);
  if (!comp->ok) {
    std::fprintf(stderr, "compile failed\n");
    return 1;
  }
  ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
  pt.Solve();
  ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
  ivy::BlockStop bs(&comp->prog, comp->sema.get(), &cg);
  ivy::BlockStopReport report = bs.Run();
  ivy::AnnoDb db = ivy::AnnoDb::Extract(comp->prog, *comp->sema, comp->module, &report);
  std::string json = db.ToJson().Dump();
  std::printf("exported annotation repository: %zu functions, %zu records, %zu bytes JSON\n",
              db.funcs().size(), db.records().size(), json.size());

  // Show a couple of representative entries.
  const ivy::Json j = db.ToJson();
  for (const char* name : {"read_chan", "kmalloc", "udp_sendmsg"}) {
    if (const ivy::Json* funcs = j.Find("functions")) {
      if (const ivy::Json* f = funcs->Find(name)) {
        std::printf("  %s: %s\n", name, f->Dump(-1).c_str());
      }
    }
  }

  // 2. Round trip + merge with a contributed database.
  std::string err;
  ivy::AnnoDb loaded = ivy::AnnoDb::FromJson(ivy::Json::Parse(json, &err));
  ivy::Json contrib = ivy::Json::MakeObject();
  contrib["functions"]["third_party_dma_wait"]["blocking"] = ivy::Json::MakeBool(true);
  ivy::AnnoDb contributed = ivy::AnnoDb::FromJson(contrib);
  int added = loaded.Merge(contributed);
  std::printf("\nmerged contributed database: %d new entries (now %zu functions)\n", added,
              loaded.funcs().size());

  // 3. Apply to an unannotated module: the author wrote no attributes, but
  // the repository knows third_party_dma_wait blocks, so BlockStop finds the
  // atomic-context bug anyway.
  const char* unannotated = R"(
    int dma_lock;
    void third_party_dma_wait(void);
    void flush_dma_rings(void) {
      int flags = spin_lock_irqsave(&dma_lock);
      third_party_dma_wait();
      spin_unlock_irqrestore(&dma_lock, flags);
    }
  )";
  auto module = ivy::CompileOne(unannotated, cfg);
  if (!module->ok) {
    std::fprintf(stderr, "module failed\n%s", module->Errors().c_str());
    return 1;
  }
  int applied = loaded.ApplyAttributes(&module->prog);
  ivy::PointsTo pt2(&module->prog, module->sema.get(), false);
  pt2.Solve();
  ivy::CallGraph cg2 = ivy::CallGraph::Build(module->prog, *module->sema, pt2);
  ivy::BlockStop bs2(&module->prog, module->sema.get(), &cg2);
  ivy::BlockStopReport r2 = bs2.Run();
  std::printf("applied repository facts to the unannotated module: %d functions updated\n",
              applied);
  std::printf("BlockStop on it: %zu violation(s)\n", r2.violations.size());
  for (const ivy::BlockingViolation& v : r2.violations) {
    std::printf("  %s -> %s (%s)\n", v.caller.c_str(), v.callee.c_str(), v.witness.c_str());
  }
  return 0;
}
