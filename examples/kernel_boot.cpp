// The paper's end-to-end story: compile the whole (synthetic) kernel with
// all three soundness tools, boot it, run a workload, and print every tool's
// report — Deputy's check statistics, CCount's free audit, and BlockStop's
// violations.
//
// Build & run:  ./build/examples/example_kernel_boot
#include <cstdio>

#include "src/analysis/callgraph.h"
#include "src/analysis/pointsto.h"
#include "src/blockstop/blockstop.h"
#include "src/kernel/corpus.h"

int main() {
  ivy::ToolConfig cfg;
  cfg.deputy = true;
  cfg.ccount = true;
  auto comp = ivy::CompileKernel(cfg);
  if (!comp->ok) {
    std::fprintf(stderr, "kernel failed to compile:\n%s", comp->Errors().c_str());
    return 1;
  }
  std::printf("kernel compiled: %zu functions, %zu records, %zu globals\n",
              comp->prog.funcs.size(), comp->prog.records.size(), comp->prog.globals.size());
  std::printf("Deputy: %lld run-time checks, %lld discharged statically\n\n",
              static_cast<long long>(comp->check_stats.TotalEmitted()),
              static_cast<long long>(comp->check_stats.TotalDischarged()));

  auto vm = ivy::MakeVm(*comp);
  ivy::VmResult boot = vm->Call("boot_kernel", {50});
  if (!boot.ok) {
    std::printf("BOOT FAILED: %s at %s\n", ivy::TrapKindName(boot.trap),
                comp->sm.Render(boot.trap_loc).c_str());
    return 1;
  }
  std::printf("console output:\n%s\n", vm->log().c_str());
  ivy::VmResult use = vm->Call("light_use", {32});
  std::printf("light use: %s (%lld cycles total, %lld context switches)\n",
              use.ok ? "ok" : "trapped", static_cast<long long>(vm->cycles()),
              static_cast<long long>(vm->context_switches()));

  const ivy::HeapStats& heap = vm->heap().stats();
  std::printf("\nCCount audit: %lld allocs, %lld frees (%lld verified good, %lld bad)\n",
              static_cast<long long>(heap.allocs),
              static_cast<long long>(heap.frees_attempted),
              static_cast<long long>(heap.frees_good),
              static_cast<long long>(heap.frees_bad));
  for (const auto& [key, site] : vm->heap().bad_free_sites()) {
    std::printf("  bad free at %s (%lld times) — object leaked, kernel kept running\n",
                comp->sm.Render(site.loc).c_str(), static_cast<long long>(site.count));
  }

  ivy::PointsTo pt(&comp->prog, comp->sema.get(), /*field_sensitive=*/false);
  pt.Solve();
  ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
  ivy::BlockStop bs(&comp->prog, comp->sema.get(), &cg);
  std::printf("\n%s", bs.Run().ToString().c_str());
  return 0;
}
