// The paper's end-to-end story: compile the whole (synthetic) kernel with
// every soundness tool, boot it, run a workload, and print one unified
// report — all through the ToolPass pipeline, which computes the points-to
// results and the call graph exactly once and shares them across tools.
//
// Build & run:  ./build/examples/example_kernel_boot
#include <cstdio>

#include "src/kernel/corpus.h"
#include "src/tool/pipeline.h"

int main() {
  ivy::Pipeline pipeline = ivy::PipelineBuilder()
                               .Deputy(true)
                               .CCount(true)
                               .AllTools()
                               .FieldSensitive(false)  // the paper's configuration
                               .Build();
  auto comp = pipeline.Compile(ivy::KernelSources());
  if (!comp->ok) {
    std::fprintf(stderr, "kernel failed to compile:\n%s", comp->Errors().c_str());
    return 1;
  }
  std::printf("kernel compiled: %zu functions, %zu records, %zu globals\n",
              comp->prog.funcs.size(), comp->prog.records.size(), comp->prog.globals.size());

  // Boot + workload first so the hybrid tools (ccount, locksafe) can validate
  // the runtime behaviour too.
  auto vm = ivy::MakeVm(*comp);
  ivy::VmResult boot = vm->Call("boot_kernel", {50});
  if (!boot.ok) {
    std::printf("BOOT FAILED: %s at %s\n", ivy::TrapKindName(boot.trap),
                comp->sm.Render(boot.trap_loc).c_str());
    return 1;
  }
  std::printf("console output:\n%s\n", vm->log().c_str());
  ivy::VmResult use = vm->Call("light_use", {32});
  std::printf("light use: %s (%lld cycles total, %lld context switches)\n\n",
              use.ok ? "ok" : "trapped", static_cast<long long>(vm->cycles()),
              static_cast<long long>(vm->context_switches()));

  // One pipeline run: every registered tool, one shared analysis cache.
  auto ctx = pipeline.MakeContext(comp.get());
  ctx->AttachVm(vm.get());
  ivy::PipelineResult result = pipeline.RunTools(*ctx);

  std::printf("%s", result.ToString(&comp->sm).c_str());
  std::printf("\npipeline: %zu tools, %zu findings (%d errors); callgraph built %dx, "
              "points-to built %dx\n",
              result.results.size(), result.findings.size(), result.ErrorCount(),
              result.callgraph_builds, result.pointsto_builds);
  return 0;
}
