// Quickstart: the Deputy workflow from §2.1 on a ten-line driver routine.
//
//   1. Unannotated code with a real overflow compiles (Deputy is
//      incremental) and the bug is caught by an inserted run-time check.
//   2. Adding a count() annotation moves the same property to compile time
//      for the correct loop — the check is *discharged statically* and the
//      erased program runs at full speed.
//
// Build & run:  ./build/examples/example_quickstart
#include <cstdio>

#include "src/tool/pipeline.h"

namespace {

const char* kBuggy = R"(
  // A buffer routine with an off-by-one: i <= len walks one past the end.
  int fill(char* count(len) buf, int len) {
    int sum = 0;
    for (int i = 0; i <= len; i++) {
      buf[i] = i;
      sum = sum + buf[i];
    }
    return sum;
  }
  int main(void) {
    char scratch[64];
    return fill(scratch, 64);
  }
)";

const char* kFixed = R"(
  int fill(char* count(len) buf, int len) {
    int sum = 0;
    for (int i = 0; i < len; i++) {
      buf[i] = i;
      sum = sum + buf[i];
    }
    return sum;
  }
  int main(void) {
    char scratch[64];
    return fill(scratch, 64);
  }
)";

}  // namespace

int main() {
  std::printf("=== 1. Buggy routine under Deputy ===\n");
  ivy::Pipeline deputy = ivy::PipelineBuilder().Deputy(true).Build();
  auto buggy = deputy.Compile({ivy::SourceFile{"input.mc", kBuggy}});
  if (!buggy->ok) {
    std::printf("compile errors:\n%s", buggy->Errors().c_str());
    return 1;
  }
  std::printf("compiled; %lld run-time checks inserted, %lld discharged statically\n",
              static_cast<long long>(buggy->check_stats.TotalEmitted()),
              static_cast<long long>(buggy->check_stats.TotalDischarged()));
  auto vm = ivy::MakeVm(*buggy);
  ivy::VmResult r = vm->Call("main");
  std::printf("run: %s", r.ok ? "completed (unexpected!)\n" : "TRAPPED: ");
  if (!r.ok) {
    std::printf("%s at %s\n  -> %s\n", ivy::TrapKindName(r.trap),
                buggy->sm.Render(r.trap_loc).c_str(),
                buggy->sm.LineAt(r.trap_loc).c_str());
  }

  std::printf("\n=== 2. Fixed routine ===\n");
  auto fixed = deputy.Compile({ivy::SourceFile{"input.mc", kFixed}});
  std::printf("compiled; %lld run-time checks inserted, %lld discharged statically\n",
              static_cast<long long>(fixed->check_stats.TotalEmitted()),
              static_cast<long long>(fixed->check_stats.TotalDischarged()));
  auto vm2 = ivy::MakeVm(*fixed);
  ivy::VmResult r2 = vm2->Call("main");
  std::printf("run: %s, result=%lld, cycles=%lld\n", r2.ok ? "ok" : "trapped",
              static_cast<long long>(r2.value), static_cast<long long>(r2.cycles));

  std::printf("\n=== 3. Erasure semantics ===\n");
  auto erased = ivy::PipelineBuilder()
                    .Deputy(false)
                    .Build()
                    .Compile({ivy::SourceFile{"input.mc", kFixed}});
  auto vm3 = ivy::MakeVm(*erased);
  ivy::VmResult r3 = vm3->Call("main");
  std::printf("tools off: result=%lld (same), cycles=%lld (checks erased)\n",
              static_cast<long long>(r3.value), static_cast<long long>(r3.cycles));
  return 0;
}
