// Incremental porting (§1, "Incremental porting" + §2.1): the same module in
// three stages of conversion. "While the initial version of the file may
// contain several blocks of trusted code, subsequent versions will gradually
// eliminate this trusted code in favor of fully annotated and checked code."
//
// Stage 0: everything trusted (quickest way to get the file compiling).
// Stage 1: annotations added, hot loop still trusted.
// Stage 2: fully annotated — and the overflow bug the trusted code was
//          hiding is finally caught.
//
// Build & run:  ./build/examples/example_incremental_port
#include <cstdio>

#include "src/tool/pipeline.h"

namespace {

// A ring logger with a subtle bug: `head % (CAP+1)` can index one past.
const char* kStage0 = R"(
  enum { CAP = 32 };
  struct ring { int head; char slots[32]; };
  struct ring logger;
  int log_byte(int c) {
    trusted {
      logger.slots[logger.head % (CAP + 1)] = c;
      logger.head = logger.head + 1;
    }
    return logger.head;
  }
  int main(void) {
    for (int i = 0; i < 64; i++) { log_byte(i); }
    return logger.head;
  }
)";

const char* kStage1 = R"(
  enum { CAP = 32 };
  struct ring { int head; char slots[32]; };
  struct ring logger;
  int log_byte(int c) {
    int idx = logger.head % (CAP + 1);   // annotated module, loop checked...
    trusted {
      logger.slots[idx] = c;             // ...but the store is still trusted
    }
    logger.head = logger.head + 1;
    return logger.head;
  }
  int main(void) {
    for (int i = 0; i < 64; i++) { log_byte(i); }
    return logger.head;
  }
)";

const char* kStage2 = R"(
  enum { CAP = 32 };
  struct ring { int head; char slots[32]; };
  struct ring logger;
  int log_byte(int c) {
    int idx = logger.head % (CAP + 1);
    logger.slots[idx] = c;               // fully checked: the bug surfaces
    logger.head = logger.head + 1;
    return logger.head;
  }
  int main(void) {
    for (int i = 0; i < 64; i++) { log_byte(i); }
    return logger.head;
  }
)";

void Stage(const char* name, const char* src) {
  static const ivy::Pipeline kPipeline = ivy::PipelineBuilder().Deputy(true).Build();
  auto comp = kPipeline.Compile({ivy::SourceFile{"input.mc", src}});
  if (!comp->ok) {
    std::printf("%s: compile errors\n%s", name, comp->Errors().c_str());
    return;
  }
  const ivy::SemaStats& stats = comp->sema->stats();
  auto vm = ivy::MakeVm(*comp);
  ivy::VmResult r = vm->Call("main");
  std::printf("%s: trusted lines=%zu, runtime checks=%lld -> %s\n", name,
              stats.trusted_lines.size(),
              static_cast<long long>(comp->check_stats.TotalEmitted()),
              r.ok ? "ran to completion (bug hidden)" : "CHECK TRAPPED (bug caught)");
  if (!r.ok) {
    std::printf("    %s at %s\n", ivy::TrapKindName(r.trap),
                comp->sm.Render(r.trap_loc).c_str());
  }
}

}  // namespace

int main() {
  std::printf("Incremental porting: trusted code shrinks, checking grows.\n\n");
  Stage("stage 0 (all trusted)   ", kStage0);
  Stage("stage 1 (partly trusted)", kStage1);
  Stage("stage 2 (fully checked) ", kStage2);
  std::printf(
      "\nThe same module compiles at every stage (no flag day); each stage removes\n"
      "trusted lines and gains checks, until the latent overflow is caught.\n");
  return 0;
}
